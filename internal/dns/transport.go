package dns

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Transport exchanges one DNS query with the server at addr and returns
// its response. Implementations: UDPTransport speaks real RFC 1035 UDP on
// the host network; MemNet short-circuits to in-process handlers, which is
// what makes multi-million-query measurement sweeps affordable.
type Transport interface {
	Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error)
}

// Handler answers DNS queries, in the manner of http.Handler.
type Handler interface {
	ServeDNS(q *Message, from netip.Addr) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q *Message, from netip.Addr) *Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(q *Message, from netip.Addr) *Message { return f(q, from) }

// Errors surfaced by transports.
var (
	// ErrNoRoute means no server is bound at the target address (the
	// in-memory analog of an ICMP unreachable / timeout).
	ErrNoRoute = errors.New("dns: no server at address")
	// ErrIDMismatch means the response ID did not match the query.
	ErrIDMismatch = errors.New("dns: response ID mismatch")
)

// MemNet is an in-memory "Internet": a routing table from server address
// to handler. Exchange serializes the query and deserializes the response
// through the real codec, so everything above the socket layer behaves
// identically to UDP. MemNet is safe for concurrent use; binds are
// expected to be rare relative to exchanges.
type MemNet struct {
	mu       sync.RWMutex
	handlers map[netip.Addr]Handler
	// Unreachable marks addresses that drop queries (used to simulate
	// outages such as Netnod withdrawing service).
	unreachable map[netip.Addr]bool
	// WireTaps observe every exchanged query (e.g. for counting).
	tap func(server netip.Addr, q *Message)
}

// NewMemNet returns an empty in-memory network.
func NewMemNet() *MemNet {
	return &MemNet{
		handlers:    make(map[netip.Addr]Handler),
		unreachable: make(map[netip.Addr]bool),
	}
}

// Bind attaches a handler to an address, replacing any previous binding.
func (m *MemNet) Bind(addr netip.Addr, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
}

// Unbind removes the handler at addr.
func (m *MemNet) Unbind(addr netip.Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
}

// SetUnreachable marks or clears an address as dropping all queries.
func (m *MemNet) SetUnreachable(addr netip.Addr, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unreachable[addr] = down
}

// SetTap installs a function observing every exchange (nil to remove).
func (m *MemNet) SetTap(tap func(server netip.Addr, q *Message)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tap = tap
}

// Exchange implements Transport. The query is round-tripped through the
// wire codec to keep the in-memory path faithful to the UDP path.
func (m *MemNet) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	h := m.handlers[server]
	down := m.unreachable[server]
	tap := m.tap
	m.mu.RUnlock()
	if tap != nil {
		tap(server, query)
	}
	if down || h == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, server)
	}
	wire, err := query.Encode()
	if err != nil {
		return nil, err
	}
	decoded, err := Decode(wire)
	if err != nil {
		return nil, err
	}
	resp := h.ServeDNS(decoded, netip.AddrFrom4([4]byte{127, 0, 0, 1}))
	if resp == nil {
		return nil, fmt.Errorf("%w: handler returned no response", ErrNoRoute)
	}
	respWire, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	out, err := Decode(respWire)
	if err != nil {
		return nil, err
	}
	if out.ID != query.ID {
		return nil, ErrIDMismatch
	}
	return out, nil
}

// UDPTransport exchanges queries over real UDP sockets. Port is the
// destination port (53 by default; the simulated servers listen on an
// ephemeral port, so tests inject it).
type UDPTransport struct {
	Port    int
	Timeout time.Duration
}

// Exchange implements Transport over UDP with a single datagram
// round-trip; retries are the Client's job.
func (t *UDPTransport) Exchange(ctx context.Context, server netip.Addr, query *Message) (*Message, error) {
	port := t.Port
	if port == 0 {
		port = 53
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	wire, err := query.Encode()
	if err != nil {
		return nil, err
	}
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "udp", netip.AddrPortFrom(server, uint16(port)).String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, maxMsgSize)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			// Garbled datagram: keep listening until the deadline.
			continue
		}
		if resp.ID != query.ID {
			continue // stray or spoofed response
		}
		return resp, nil
	}
}

// Client issues queries over a Transport with ID generation and
// bounded retransmission.
type Client struct {
	Transport Transport
	// Retries is the number of re-sends after the first attempt.
	Retries int
	// rng guards ID generation.
	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient returns a client over the given transport.
func NewClient(t Transport) *Client {
	return &Client{Transport: t, Retries: 2, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rng.Intn(1 << 16))
}

// Query sends a single question to server and returns the response.
func (c *Client) Query(ctx context.Context, server netip.Addr, name string, qtype Type) (*Message, error) {
	q := NewQuery(c.nextID(), name, qtype)
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		resp, err := c.Transport.Exchange(ctx, server, q)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Fresh ID per retransmission, as real resolvers do.
		q.ID = c.nextID()
	}
	return nil, fmt.Errorf("dns: query %s %s @%v failed: %w", name, qtype, server, lastErr)
}
