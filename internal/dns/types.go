// Package dns implements the subset of the DNS protocol the reproduction
// needs to behave like a real active-measurement platform: the RFC 1035
// wire format (with name compression), resource records for A, AAAA, NS,
// CNAME, SOA, MX and TXT, a query client with retransmission, an
// authoritative server framework with pluggable transports (real UDP and an
// in-memory loopback for large sweeps), and an iterative resolver that
// walks delegations from the root exactly the way OpenINTEL's measurement
// pipeline does.
package dns

import "fmt"

// Type is a DNS resource record type code (RFC 1035 §3.2.2).
type Type uint16

// Record types used by the measurement pipeline.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	// TypeANY is the QTYPE "*" (RFC 1035 §3.2.3); query-only.
	TypeANY Type = 255
)

// Note: TypeOPT (41, EDNS0) is defined in edns.go.

var typeNames = map[Type]string{
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeANY:   "ANY",
}

// String returns the mnemonic for t, or "TYPEn" for unknown codes
// (RFC 3597 notation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to its code.
func ParseType(s string) (Type, bool) {
	for t, name := range typeNames {
		if name == s {
			return t, true
		}
	}
	return 0, false
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// String returns the mnemonic for c.
func (c Class) String() string {
	if c == ClassIN {
		return "IN"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	if s, ok := rcodeNames[rc]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Opcode is a DNS operation code. Only QUERY is implemented.
type Opcode uint8

// OpcodeQuery is a standard query.
const OpcodeQuery Opcode = 0
