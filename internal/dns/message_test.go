package dns

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleMessage() *Message {
	m := NewQuery(0x1234, "example.ru.", TypeA)
	m.Response = true
	m.Authoritative = true
	m.Answers = []RR{
		NewA("example.ru.", 300, mustAddr("193.0.2.10")),
		NewA("example.ru.", 300, mustAddr("193.0.2.11")),
	}
	m.Authority = []RR{
		NewNS("example.ru.", 3600, "ns1.reg.ru."),
		NewNS("example.ru.", 3600, "ns2.reg.ru."),
	}
	m.Additional = []RR{
		NewA("ns1.reg.ru.", 3600, mustAddr("194.58.116.1")),
		NewAAAA("ns1.reg.ru.", 3600, mustAddr("2001:db8::1")),
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", m, got)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := NewQuery(1, "very-long-domain-label.example.ru.", TypeA)
	m.Response = true
	for i := 0; i < 8; i++ {
		m.Answers = append(m.Answers, NewA("very-long-domain-label.example.ru.", 60, mustAddr("10.0.0.1")))
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each answer would repeat the 35-octet name.
	uncompressed := 12 + (len("very-long-domain-label.example.ru.") + 1 + 4) + 8*(len("very-long-domain-label.example.ru.")+1+2+2+4+2+4)
	if len(wire) >= uncompressed {
		t.Errorf("compressed size %d not smaller than uncompressed estimate %d", len(wire), uncompressed)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode compressed: %v", err)
	}
	if len(back.Answers) != 8 || back.Answers[7].Name != "very-long-domain-label.example.ru." {
		t.Error("compressed names did not decode correctly")
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	m := NewQuery(7, "zone.ru.", TypeANY)
	m.Response = true
	m.Answers = []RR{
		NewA("zone.ru.", 60, mustAddr("192.0.2.1")),
		NewAAAA("zone.ru.", 60, mustAddr("2001:db8::2")),
		NewNS("zone.ru.", 60, "ns.zone.ru."),
		NewCNAME("www.zone.ru.", 60, "zone.ru."),
		NewSOA("zone.ru.", "ns.zone.ru.", "hostmaster.zone.ru.", 2022052501),
		NewMX("zone.ru.", 60, 10, "mail.zone.ru."),
		NewTXT("zone.ru.", 60, "v=spf1 -all", "second string"),
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", m, got)
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0, 1, 2},
		bytes.Repeat([]byte{0xFF}, 12), // implausible counts
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%v) succeeded, want error", c)
		}
	}
}

func TestDecodeRejectsForwardPointer(t *testing.T) {
	// Header with 1 question whose name is a pointer to itself.
	buf := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 12, // pointer to offset 12 (itself)
		0, 1, 0, 1,
	}
	if _, err := Decode(buf); err == nil {
		t.Fatal("self-referential pointer accepted")
	}
}

func TestDecodeRejectsTruncatedRDATA(t *testing.T) {
	m := sampleMessage()
	wire, _ := m.Encode()
	for cut := 13; cut < len(wire)-1; cut += 7 {
		if _, err := Decode(wire[:cut]); err == nil {
			// Some prefixes may parse if counts allow; but with fixed
			// counts in the header a cut body must fail.
			t.Errorf("Decode of %d-octet prefix succeeded", cut)
		}
	}
}

func TestNameHelpers(t *testing.T) {
	if Canonical("ExAmPlE.RU") != "example.ru." {
		t.Error("Canonical lowercase+fqdn failed")
	}
	if Canonical(".") != "." || Canonical("") != "." {
		t.Error("Canonical root failed")
	}
	if Parent("a.b.ru.") != "b.ru." || Parent("ru.") != "." || Parent(".") != "." {
		t.Error("Parent failed")
	}
	if TLD("ns1.example.com.") != "com" || TLD(".") != "" {
		t.Error("TLD failed")
	}
	if !IsSubdomain("a.ru.", "ru.") || IsSubdomain("aru.", "ru.") || !IsSubdomain("x.y.", ".") {
		t.Error("IsSubdomain failed")
	}
	if Join("ns1", "reg.ru.") != "ns1.reg.ru." || Join("x", ".") != "x." {
		t.Error("Join failed")
	}
	if CountLabels("a.b.ru.") != 3 || CountLabels(".") != 0 {
		t.Error("CountLabels failed")
	}
}

func TestValidName(t *testing.T) {
	valid := []string{".", "ru.", "example.ru.", "xn--p1ai.", "a-b-c.example.ru."}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	long := ""
	for i := 0; i < 64; i++ {
		long += "a"
	}
	invalid := []string{"", "example.ru", "..", "a..ru.", long + ".ru.", "has space.ru."}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	// A record holding an IPv6 address must not encode.
	m := NewQuery(9, "x.ru.", TypeA)
	m.Answers = []RR{{Name: "x.ru.", Type: TypeA, Class: ClassIN, TTL: 1, Data: AData{mustAddr("2001:db8::1")}}}
	if _, err := m.Encode(); err == nil {
		t.Error("A record with IPv6 address encoded")
	}
	m2 := NewQuery(9, "x.ru.", TypeTXT)
	m2.Answers = []RR{{Name: "x.ru.", Type: TypeTXT, Class: ClassIN, TTL: 1, Data: TXTData{}}}
	if _, err := m2.Encode(); err == nil {
		t.Error("empty TXT encoded")
	}
}

func TestQuickWireFuzz(t *testing.T) {
	// Decoding arbitrary bytes must never panic and must either error or
	// produce a message that re-encodes.
	f := func(data []byte) bool {
		m, err := Decode(data)
		if err != nil {
			return true
		}
		_, _ = m.Encode()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReply(t *testing.T) {
	q := NewQuery(42, "example.ru.", TypeNS)
	q.RecursionDesired = true
	r := q.Reply()
	if !r.Response || r.ID != 42 || !r.RecursionDesired || len(r.Questions) != 1 {
		t.Errorf("Reply skeleton wrong: %+v", r.Header)
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeNS.String() != "NS" || Type(999).String() != "TYPE999" {
		t.Error("Type.String failed")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String failed")
	}
	if ClassIN.String() != "IN" || Class(4).String() != "CLASS4" {
		t.Error("Class.String failed")
	}
	if typ, ok := ParseType("CNAME"); !ok || typ != TypeCNAME {
		t.Error("ParseType failed")
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
}

func TestSortRRs(t *testing.T) {
	rrs := []RR{
		NewA("b.ru.", 1, mustAddr("10.0.0.2")),
		NewNS("a.ru.", 1, "ns2.x.ru."),
		NewA("a.ru.", 1, mustAddr("10.0.0.1")),
		NewNS("a.ru.", 1, "ns1.x.ru."),
	}
	SortRRs(rrs)
	want := []string{"a.ru. A", "a.ru. NS ns1", "a.ru. NS ns2", "b.ru. A"}
	_ = want
	if rrs[0].Name != "a.ru." || rrs[0].Type != TypeA {
		t.Errorf("sort order wrong: %v", rrs)
	}
	if rrs[1].Data.String() != "ns1.x.ru." {
		t.Errorf("NS order wrong: %v", rrs)
	}
	if rrs[3].Name != "b.ru." {
		t.Errorf("name order wrong: %v", rrs)
	}
}

func BenchmarkEncode(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	wire, _ := sampleMessage().Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
