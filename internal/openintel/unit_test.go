package openintel

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"whereru/internal/simtime"
	"whereru/internal/store"
)

// deterministic clears the runtime-only SweepStats fields (wall-clock
// duration, latency quantiles) so stats can be compared across runs and
// against journal replays, which never record them.
func deterministic(s SweepStats) SweepStats {
	s.Duration = 0
	s.LatencyP50, s.LatencyP90, s.LatencyP99 = 0, 0, 0
	// Cache counters are runtime-only: whether a lookup hits, misses, or
	// coalesces depends on worker scheduling.
	s.CacheHits, s.CacheMisses, s.CacheCoalesced = 0, 0, 0
	return s
}

func TestLatencyHistogramBuckets(t *testing.T) {
	var h LatencyHistogram
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{time.Microsecond, 0},             // 1µs fits the first bound
		{2 * time.Microsecond, 1},         // 2µs fits the second
		{3 * time.Microsecond, 2},         // 3µs overflows it
		{time.Millisecond, 10},            // 1000µs ≤ 1024
		{time.Hour, latBuckets - 1},       // overflow bucket catches everything
		{100 * time.Nanosecond, 0},        // sub-µs truncates to 0µs
		{8 * time.Second, latBuckets - 1}, // 8e6µs ≤ 2^23
	}
	for _, tc := range cases {
		before := h.Counts[tc.bucket]
		h.Observe(tc.d)
		if h.Counts[tc.bucket] != before+1 {
			t.Errorf("Observe(%v): bucket %d not incremented (counts %v)", tc.d, tc.bucket, h.Counts)
		}
	}
	if h.Total() != uint64(len(cases)) {
		t.Errorf("Total() = %d, want %d", h.Total(), len(cases))
	}
}

func TestLatencyHistogramQuantile(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", h.Quantile(0.5))
	}
	// 90 observations in the 64µs bucket, 10 in the 1024µs bucket.
	for i := 0; i < 90; i++ {
		h.Observe(50 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(513 * time.Microsecond)
	}
	if got := h.Quantile(0.50); got != 64*time.Microsecond {
		t.Errorf("p50 = %v, want 64µs", got)
	}
	if got := h.Quantile(0.90); got != 64*time.Microsecond {
		t.Errorf("p90 = %v, want 64µs", got)
	}
	if got := h.Quantile(0.99); got != 1024*time.Microsecond {
		t.Errorf("p99 = %v, want 1024µs", got)
	}
}

// TestLatencyHistogramMergeExact: quantiles of a merged histogram equal
// those of the histogram that observed everything directly — the property
// that makes worker-side observation safe.
func TestLatencyHistogramMergeExact(t *testing.T) {
	var whole, a, b LatencyHistogram
	durations := []time.Duration{
		3 * time.Microsecond, 90 * time.Microsecond, 90 * time.Microsecond,
		400 * time.Microsecond, 7 * time.Millisecond, 2 * time.Second,
	}
	for i, d := range durations {
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatalf("merged counts %v != direct counts %v", a.Counts, whole.Counts)
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("quantile(%v): merged %v != direct %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestMeasureUnitMatchesSweep splits one day's inventory into units,
// measures them against a second world, and requires the recombined
// result — tallies, measurement set, committed store bytes — to match
// what Sweep produced in one piece. This is the grid's merge contract in
// miniature, without any networking.
func TestMeasureUnitMatchesSweep(t *testing.T) {
	day := simtime.ConflictStart
	ctx := context.Background()

	swept, _ := buildPipeline(t, 20000)
	stats, err := swept.Sweep(ctx, day)
	if err != nil {
		t.Fatal(err)
	}

	unitized, _ := buildPipeline(t, 20000)
	if unitized.Clock != nil {
		unitized.Clock.Set(day)
	}
	unitized.Resolver.FlushCache()
	seeds := unitized.Seeds.ZoneSnapshot(day)

	const shard = 64
	sum := SweepStats{Day: day, Domains: len(seeds)}
	var ms []store.Measurement
	for start := 0; start < len(seeds); start += shard {
		end := min(start+shard, len(seeds))
		res, err := unitized.MeasureUnit(ctx, day, seeds[start:end])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Measurements) != end-start {
			t.Fatalf("unit [%d,%d) returned %d measurements", start, end, len(res.Measurements))
		}
		if !sort.SliceIsSorted(res.Measurements, func(i, j int) bool {
			return res.Measurements[i].Domain < res.Measurements[j].Domain
		}) {
			t.Fatalf("unit [%d,%d) measurements not sorted by domain", start, end)
		}
		sum.Failed += res.Failed
		sum.NXDomain += res.NXDomain
		sum.Unreachable += res.Unreachable
		sum.Retries += res.Retries
		sum.Recovered += res.Recovered
		ms = append(ms, res.Measurements...)
	}

	if sum.Failed != stats.Failed || sum.NXDomain != stats.NXDomain || sum.Unreachable != stats.Unreachable ||
		sum.Retries != stats.Retries || sum.Recovered != stats.Recovered {
		t.Errorf("recombined tallies %+v != sweep tallies %+v", sum, stats)
	}
	if unitized.Store.NumDomains() != 0 {
		t.Errorf("MeasureUnit touched the worker store (%d domains)", unitized.Store.NumDomains())
	}

	// Committing the recombined units reproduces Sweep's store bytes.
	if err := unitized.CommitSweep(sum, ms); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeBytes(t, unitized), storeBytes(t, swept)) {
		t.Error("committed unit measurements differ from Sweep's store")
	}
}

// TestCommitSweepJournalMatchesSweep: the journal CommitSweep writes is
// byte-identical to the one Sweep writes for the same day — shard merge
// order cannot leak into the checkpoint file.
func TestCommitSweepJournalMatchesSweep(t *testing.T) {
	day := simtime.ConflictStart
	ctx := context.Background()
	dir := t.TempDir()

	journalFor := func(name string, run func(p *Pipeline)) []byte {
		p, _ := buildPipeline(t, 20000)
		path := filepath.Join(dir, name)
		j, err := store.CreateJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		p.Checkpoint = j
		run(p)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	sweepJournal := journalFor("sweep.wrjl", func(p *Pipeline) {
		if _, err := p.Sweep(ctx, day); err != nil {
			t.Fatal(err)
		}
	})
	commitJournal := journalFor("commit.wrjl", func(p *Pipeline) {
		if p.Clock != nil {
			p.Clock.Set(day)
		}
		p.Resolver.FlushCache()
		seeds := p.Seeds.ZoneSnapshot(day)
		stats := SweepStats{Day: day, Domains: len(seeds)}
		var ms []store.Measurement
		// Deliberately commit units in reverse order of measurement: the
		// journal sorts by domain, so order must not matter... but the
		// merge contract is unit-index order, so recombine that way.
		for start := 0; start < len(seeds); start += 100 {
			end := min(start+100, len(seeds))
			res, err := p.MeasureUnit(ctx, day, seeds[start:end])
			if err != nil {
				t.Fatal(err)
			}
			stats.Failed += res.Failed
			stats.NXDomain += res.NXDomain
			stats.Unreachable += res.Unreachable
			ms = append(ms, res.Measurements...)
		}
		if err := p.CommitSweep(stats, ms); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(sweepJournal, commitJournal) {
		t.Errorf("CommitSweep journal (%d bytes) differs from Sweep journal (%d bytes)", len(commitJournal), len(sweepJournal))
	}
}
