package openintel

import (
	"context"
	"testing"

	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

func buildPipeline(t testing.TB, scale int) (*Pipeline, *world.World) {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 3, Scale: scale, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return &Pipeline{
		Resolver: w.NewResolver(),
		Seeds:    w.Registries,
		Clock:    w.Clock(),
		Store:    store.New(),
		Workers:  4,
	}, w
}

func TestSweepMeasuresActiveZone(t *testing.T) {
	p, w := buildPipeline(t, 20000)
	day := simtime.ConflictStart
	stats, err := p.Sweep(context.Background(), day)
	if err != nil {
		t.Fatal(err)
	}
	want := w.ActiveDomains(day)
	if stats.Domains != want {
		t.Fatalf("swept %d domains, registry has %d active", stats.Domains, want)
	}
	if stats.Failed != 0 {
		t.Errorf("%d failures in a healthy world", stats.Failed)
	}
	if p.Store.NumDomains() != want {
		t.Fatalf("store has %d domains, want %d", p.Store.NumDomains(), want)
	}
	// Every stored measurement must have NS data.
	p.Store.ForEachAt(day, func(domain string, cfg store.Config) {
		if len(cfg.NSHosts) == 0 || len(cfg.NSAddrs) == 0 {
			t.Errorf("%s measured with empty NS data: %+v", domain, cfg)
		}
		if len(cfg.ApexAddrs) == 0 {
			t.Errorf("%s has no apex addresses", domain)
		}
	})
}

func TestSweepTracksZoneChanges(t *testing.T) {
	p, w := buildPipeline(t, 20000)
	ctx := context.Background()
	early := simtime.StudyStart
	late := simtime.StudyEnd
	s1, err := p.Sweep(ctx, early)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Sweep(ctx, late)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Domains == s2.Domains && w.ActiveDomains(early) != w.ActiveDomains(late) {
		t.Error("sweeps did not follow registry churn")
	}
	sweeps := p.Store.Sweeps()
	if len(sweeps) != 2 || sweeps[0] != early || sweeps[1] != late {
		t.Fatalf("recorded sweeps = %v", sweeps)
	}
}

func TestSweepCancellation(t *testing.T) {
	p, _ := buildPipeline(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Sweep(ctx, simtime.StudyStart); err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
}

func TestOutageRecordsFailures(t *testing.T) {
	p, w := buildPipeline(t, 20000)
	day := simtime.MustParse("2021-03-22") // the paper's footnote-8 outage
	w.SetOutage(day, true)
	stats, err := p.Sweep(context.Background(), day)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != stats.Domains {
		t.Fatalf("outage sweep: %d/%d failed, want all", stats.Failed, stats.Domains)
	}
	w.SetOutage(day, false)
	stats, err = p.Sweep(context.Background(), day.Add(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("post-outage sweep still failing: %d", stats.Failed)
	}
}

func TestSchedule(t *testing.T) {
	days := Schedule(simtime.StudyStart, simtime.StudyEnd, simtime.Date(2022, 2, 1), 3)
	if days[0] != simtime.StudyStart {
		t.Fatalf("first day = %v", days[0])
	}
	if days[len(days)-1] != simtime.StudyEnd {
		t.Fatalf("last day = %v", days[len(days)-1])
	}
	// Monotonic, unique.
	monthly, dense := 0, 0
	for i := 1; i < len(days); i++ {
		if days[i] <= days[i-1] {
			t.Fatalf("schedule not increasing at %d: %v then %v", i, days[i-1], days[i])
		}
		if days[i] < simtime.Date(2022, 2, 1) {
			monthly++
		} else {
			dense++
		}
	}
	if monthly < 50 {
		t.Errorf("monthly sweeps = %d, want ≈ 55", monthly)
	}
	if dense < 30 {
		t.Errorf("dense sweeps = %d, want ≈ 38", dense)
	}
	// The Netnod cutoff day must land on a sweep (dense step 3 from Feb 1).
	found := false
	for _, d := range days {
		if d == simtime.Date(2022, 3, 3) {
			found = true
		}
	}
	if !found {
		t.Error("2022-03-03 missing from the dense schedule")
	}
	// Degenerate step defaults to 1.
	one := Schedule(0, 5, 0, 0)
	if len(one) != 6 {
		t.Errorf("degenerate schedule = %v", one)
	}
}

func TestStatsString(t *testing.T) {
	s := SweepStats{Day: simtime.MustParse("2022-02-24"), Domains: 10, Failed: 1, NXDomain: 2}
	want := "2022-02-24: 10 domains, 1 failed, 2 nxdomain"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestRunStopsOnError(t *testing.T) {
	p, _ := buildPipeline(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, []simtime.Day{simtime.StudyStart, simtime.StudyEnd}); err == nil {
		t.Fatal("Run with cancelled context succeeded")
	}
}
