package openintel

import (
	"bytes"
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"

	"whereru/internal/dns"
	"whereru/internal/netsim"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// buildLossyPipeline is buildPipeline routed through the fault layer.
func buildLossyPipeline(t testing.TB, scale int, seed int64, profile dns.FaultProfile, workers int) (*Pipeline, *world.World, *dns.FaultTransport) {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 3, Scale: scale, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r, ft := w.NewFaultyResolver(seed, profile)
	return &Pipeline{
		Resolver: r,
		Seeds:    w.Registries,
		Clock:    w.Clock(),
		Store:    store.New(),
		Workers:  workers,
	}, w, ft
}

func TestScheduleEdgeCases(t *testing.T) {
	s := simtime.Date(2022, 1, 10)
	tests := []struct {
		name                  string
		start, end, denseFrom simtime.Day
		step                  int
		want                  []simtime.Day
	}{
		{
			name:  "end before start is empty",
			start: s, end: s.Add(-1), denseFrom: s, step: 3,
			want: nil,
		},
		{
			name:  "denseFrom before start clamps to start",
			start: s, end: s.Add(10), denseFrom: s.Add(-30), step: 2,
			want: []simtime.Day{s, s.Add(2), s.Add(4), s.Add(6), s.Add(8), s.Add(10)},
		},
		{
			name:  "step larger than window keeps endpoints",
			start: s, end: s.Add(5), denseFrom: s, step: 100,
			want: []simtime.Day{s, s.Add(5)},
		},
		{
			name:  "final day appended when step overshoots",
			start: s, end: s.Add(7), denseFrom: s, step: 3,
			want: []simtime.Day{s, s.Add(3), s.Add(6), s.Add(7)},
		},
		{
			name:  "single-day study",
			start: s, end: s, denseFrom: s, step: 3,
			want: []simtime.Day{s},
		},
		{
			name:  "monthly-only still includes the final day",
			start: simtime.Date(2021, 1, 1), end: simtime.Date(2021, 3, 15),
			denseFrom: simtime.Date(2022, 2, 1), step: 3,
			want: []simtime.Day{
				simtime.Date(2021, 1, 1), simtime.Date(2021, 2, 1),
				simtime.Date(2021, 3, 1), simtime.Date(2021, 3, 15),
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Schedule(tt.start, tt.end, tt.denseFrom, tt.step)
			if len(got) != len(tt.want) {
				t.Fatalf("Schedule = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Schedule[%d] = %v, want %v (full: %v)", i, got[i], tt.want[i], tt.want)
				}
			}
		})
	}
}

// sweepOnce runs a single-worker lossy sweep and returns the stats plus
// the serialized store.
func sweepOnce(t *testing.T, faultSeed int64) (SweepStats, []byte) {
	t.Helper()
	p, _, _ := buildLossyPipeline(t, 20000, faultSeed, dns.FaultProfile{Loss: 0.25, ServFail: 0.05}, 1)
	stats, err := p.Sweep(context.Background(), simtime.ConflictStart)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return stats, buf.Bytes()
}

func TestLossySweepDeterminism(t *testing.T) {
	s1, b1 := sweepOnce(t, 7)
	s2, b2 := sweepOnce(t, 7)
	if deterministic(s1) != deterministic(s2) {
		t.Errorf("same fault seed, different stats:\n  %+v\n  %+v", s1, s2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("same fault seed produced different store contents")
	}
	if s1.Retries == 0 {
		t.Error("a 25%-loss sweep recorded zero retries — faults not injected?")
	}
	s3, b3 := sweepOnce(t, 8)
	if s1 == s3 && bytes.Equal(b1, b3) {
		t.Error("different fault seeds replayed identical degradation")
	}
}

func TestLossySweepRecovers(t *testing.T) {
	// The acceptance bar from the experiment design: 10% loss with two
	// retries must lose no more than 1% of the zone.
	p, _, ft := buildLossyPipeline(t, 2000, 20220224, dns.FaultProfile{Loss: 0.10}, 8)
	stats, err := p.Sweep(context.Background(), simtime.ConflictStart)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Domains < 2048 {
		t.Fatalf("fixture too small for the acceptance bar: %d domains", stats.Domains)
	}
	if limit := stats.Domains / 100; stats.Failed > limit {
		t.Errorf("lossy sweep failed %d/%d domains, want ≤ %d (1%%)", stats.Failed, stats.Domains, limit)
	}
	if stats.Retries == 0 || stats.Recovered == 0 {
		t.Errorf("degradation counters empty on a lossy wire: %+v", stats)
	}
	if fs := ft.Stats(); fs.Dropped == 0 {
		t.Errorf("fault layer dropped nothing: %+v", fs)
	}
	t.Logf("lossy sweep: %s", stats)
}

func TestScheduledOutageRecordsFailures(t *testing.T) {
	// The declarative re-expression of TestOutageRecordsFailures: the
	// outage is a day window on the fault layer, not mutable MemNet state,
	// so it lifts by itself when the clock moves on.
	day := simtime.MeasurementOutage
	p, w, ft := buildLossyPipeline(t, 20000, 11, dns.FaultProfile{}, 4)
	sched := netsim.NewOutageSchedule()
	w.ScheduleRegistryOutage(ft, dns.FaultProfile{}, simtime.OneDay(day), sched)

	stats, err := p.Sweep(context.Background(), day)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != stats.Domains || stats.Domains == 0 {
		t.Fatalf("outage sweep: %d/%d failed, want all", stats.Failed, stats.Domains)
	}
	if !sched.ActiveOn("tld:ru", day) {
		t.Error("outage schedule does not report tld:ru down on the outage day")
	}
	if keys := sched.ActiveKeys(day); len(keys) != 2 {
		t.Errorf("ActiveKeys(%s) = %v, want both registry TLDs", day, keys)
	}

	// No cleanup call: the next day's sweep must succeed on its own.
	stats, err = p.Sweep(context.Background(), day.Add(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("post-outage sweep still failing: %d", stats.Failed)
	}
	if sched.ActiveOn("tld:ru", day.Add(1)) {
		t.Error("outage schedule reports tld:ru down after the window")
	}
}

func TestSweepCancelMidSweep(t *testing.T) {
	p, w := buildPipeline(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n int64
	w.Mem.SetTap(func(_ netip.Addr, _ *dns.Message) {
		// Pull the plug while workers are mid-resolution, not before the
		// sweep starts (TestSweepCancellation covers that).
		if atomic.AddInt64(&n, 1) == 50 {
			cancel()
		}
	})
	if _, err := p.Sweep(ctx, simtime.ConflictStart); err == nil {
		t.Fatal("sweep cancelled mid-flight reported success")
	}
	// The pipeline must remain usable after a cancelled sweep.
	w.Mem.SetTap(nil)
	stats, err := p.Sweep(context.Background(), simtime.ConflictStart)
	if err != nil {
		t.Fatalf("sweep after cancellation: %v", err)
	}
	if stats.Failed != 0 {
		t.Errorf("sweep after cancellation: %d failures", stats.Failed)
	}
}

func TestOnProgressFromManyWorkers(t *testing.T) {
	// Scale 2000 yields well over 2048 domains, so the progress callback
	// fires from several of the 16 workers; the race detector checks the
	// callback path, the assertions check the reported counts.
	p, _ := buildPipeline(t, 2000)
	p.Workers = 16
	var (
		mu    sync.Mutex
		calls []int
	)
	p.OnProgress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done < 1 || done > total {
			t.Errorf("OnProgress(%d, %d) out of range", done, total)
		}
		calls = append(calls, done)
	}
	stats, err := p.Sweep(context.Background(), simtime.ConflictStart)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) == 0 {
		t.Fatalf("OnProgress never fired over %d domains", stats.Domains)
	}
	for _, done := range calls {
		if done%2048 != 0 {
			t.Errorf("OnProgress fired at done=%d, want multiples of 2048", done)
		}
	}
}
