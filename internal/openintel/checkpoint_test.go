package openintel

import (
	"bytes"
	"context"
	"net/netip"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"whereru/internal/dns"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// storeBytes serializes a pipeline's store for equality comparison.
func storeBytes(t *testing.T, p *Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.Store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointResumeStoreEquivalence runs a short schedule three ways —
// uninterrupted without a journal, uninterrupted with one, and split
// across a simulated crash at a sweep boundary — and requires all three
// stores to serialize to identical bytes.
func TestCheckpointResumeStoreEquivalence(t *testing.T) {
	start := simtime.ConflictStart
	schedule := []simtime.Day{start, start.Add(3), start.Add(6), start.Add(9)}
	ctx := context.Background()

	plain, _ := buildPipeline(t, 20000)
	if _, err := plain.Run(ctx, schedule); err != nil {
		t.Fatal(err)
	}
	want := storeBytes(t, plain)

	dir := t.TempDir()
	journaled, _ := buildPipeline(t, 20000)
	j, err := store.CreateJournal(filepath.Join(dir, "full.wrjl"))
	if err != nil {
		t.Fatal(err)
	}
	journaled.Checkpoint = j
	if _, err := journaled.Run(ctx, schedule); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if got := storeBytes(t, journaled); !bytes.Equal(got, want) {
		t.Fatal("checkpointing changed the collected store")
	}

	for crashAfter := 0; crashAfter <= len(schedule); crashAfter++ {
		path := filepath.Join(dir, "crash.wrjl")
		first, _ := buildPipeline(t, 20000)
		j1, err := store.CreateJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		first.Checkpoint = j1
		if _, err := first.Run(ctx, schedule[:crashAfter]); err != nil {
			t.Fatal(err)
		}
		j1.Close() // the "crash": the process is gone, only the journal survives

		second, _ := buildPipeline(t, 20000)
		j2, replay, err := store.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		second.Checkpoint = j2
		if got := len(replay.Sweeps); got != crashAfter {
			t.Fatalf("crashAfter=%d: journal replayed %d sweeps", crashAfter, got)
		}
		second.ReplayJournal(replay)
		done := Covered(replay)
		for _, day := range schedule {
			if done[day] {
				continue
			}
			if _, err := second.Sweep(ctx, day); err != nil {
				t.Fatal(err)
			}
		}
		j2.Close()
		if got := storeBytes(t, second); !bytes.Equal(got, want) {
			t.Fatalf("crashAfter=%d: resumed store differs from uninterrupted run", crashAfter)
		}
	}
}

// TestReplayJournalStats pins that replayed stats match what the live
// sweeps reported, so a resumed run's summary output is indistinguishable
// from an uninterrupted one.
func TestReplayJournalStats(t *testing.T) {
	start := simtime.ConflictStart
	schedule := []simtime.Day{start, start.Add(3)}
	path := filepath.Join(t.TempDir(), "stats.wrjl")
	p, _ := buildPipeline(t, 20000)
	j, err := store.CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p.Checkpoint = j
	live, err := p.Run(context.Background(), schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SkipSweep(start.Add(6)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	q, _ := buildPipeline(t, 20000)
	j2, replay, err := store.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	replayed := q.ReplayJournal(replay)
	if len(replayed) != len(live) {
		t.Fatalf("replayed %d stats, live run had %d", len(replayed), len(live))
	}
	for i := range live {
		// Replays carry no wall-clock timings, so compare the
		// deterministic portion.
		if replayed[i] != deterministic(live[i]) {
			t.Fatalf("stats[%d]: replayed %+v != live %+v", i, replayed[i], live[i])
		}
	}
	if got := q.Store.MissingSweeps(); len(got) != 1 || got[0] != start.Add(6) {
		t.Fatalf("skipped day not replayed as missing: %v", got)
	}
	if !Covered(replay)[start.Add(6)] {
		t.Fatal("skipped day not covered by replay")
	}
}

// TestSweepCancelReturnsPromptly asserts a mid-sweep cancel returns
// quickly with partial stats and leaks no worker goroutines.
func TestSweepCancelReturnsPromptly(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 3, Scale: 20000, RFShare: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	p := &Pipeline{
		Resolver: w.NewResolver(),
		Seeds:    w.Registries,
		Clock:    w.Clock(),
		Store:    store.New(),
		Workers:  8,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n int64
	w.Mem.SetTap(func(_ netip.Addr, _ *dns.Message) {
		if atomic.AddInt64(&n, 1) == 100 {
			cancel()
		}
	})
	startTime := time.Now()
	stats, err := p.Sweep(ctx, simtime.ConflictStart)
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if elapsed := time.Since(startTime); elapsed > 5*time.Second {
		t.Fatalf("cancelled sweep took %s to return", elapsed)
	}
	if stats.Day != simtime.ConflictStart || stats.Domains == 0 {
		t.Fatalf("cancelled sweep lost its partial stats: %+v", stats)
	}
	// Partial work reached the store but not every domain did.
	if got := p.Store.NumDomains(); got == 0 || got >= stats.Domains {
		t.Fatalf("cancelled sweep stored %d of %d domains, want a strict partial", got, stats.Domains)
	}
	w.Mem.SetTap(nil)

	// All sweep goroutines (workers, feeder, closer) must wind down; allow
	// the scheduler a grace window before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
