// Package openintel is the active DNS measurement pipeline, modeled on the
// OpenINTEL platform the paper's data comes from (van Rijswijk-Deij et al.,
// JSAC 2016): daily zone-file seeds drive an iterative-resolution sweep
// that records, for every registered domain, its delegated NS set, the A
// records of those name servers, and the A records of the domain apex.
// Sweeps run on a worker pool over any dns.Transport (in-memory for scale,
// UDP for realism) and feed the epoch-compressed measurement store.
package openintel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"whereru/internal/dns"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Seeder supplies the domain inventory for a sweep day (the daily zone
// snapshot). registry.Group satisfies this.
type Seeder interface {
	ZoneSnapshot(day simtime.Day) []string
}

// Clock moves the simulated world to the sweep day. netsim.Clock
// satisfies this.
type Clock interface {
	Set(day simtime.Day)
}

// Pipeline sweeps the zone and stores measurements.
type Pipeline struct {
	Resolver *dns.Resolver
	Seeds    Seeder
	Clock    Clock
	Store    *store.Store
	// Workers is the sweep concurrency (default 8).
	Workers int
	// CollectMX enables the mail-measurement extension: each domain's MX
	// records are collected alongside NS and A (OpenINTEL collects MX on
	// the real platform too).
	CollectMX bool
	// OnProgress, if set, is called periodically with (done, total).
	OnProgress func(done, total int)
}

// SweepStats summarizes one sweep.
type SweepStats struct {
	Day      simtime.Day
	Domains  int
	Failed   int
	NXDomain int
}

// String renders the stats compactly.
func (st SweepStats) String() string {
	return fmt.Sprintf("%s: %d domains, %d failed, %d nxdomain", st.Day, st.Domains, st.Failed, st.NXDomain)
}

// Sweep measures every seeded domain for the given day. It advances the
// world clock, flushes resolver caches (yesterday's delegations must not
// leak into today's view), resolves each domain concurrently, and records
// the results.
func (p *Pipeline) Sweep(ctx context.Context, day simtime.Day) (SweepStats, error) {
	if p.Clock != nil {
		p.Clock.Set(day)
	}
	p.Resolver.FlushCache()
	seeds := p.Seeds.ZoneSnapshot(day)
	p.Store.BeginSweep(day)

	workers := p.Workers
	if workers <= 0 {
		workers = 8
	}
	if workers > len(seeds) && len(seeds) > 0 {
		workers = len(seeds)
	}

	type result struct {
		m     store.Measurement
		nx    bool
		fatal error
	}
	jobs := make(chan string)
	results := make(chan result)
	var wg sync.WaitGroup
	var done int64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for domain := range jobs {
				m, nx := p.measure(ctx, day, domain)
				select {
				case results <- result{m: m, nx: nx}:
				case <-ctx.Done():
					return
				}
				if p.OnProgress != nil {
					if d := atomic.AddInt64(&done, 1); d%2048 == 0 {
						p.OnProgress(int(d), len(seeds))
					}
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, d := range seeds {
			select {
			case jobs <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	stats := SweepStats{Day: day, Domains: len(seeds)}
	for r := range results {
		if r.m.Config.Failed {
			stats.Failed++
		}
		if r.nx {
			stats.NXDomain++
		}
		p.Store.Add(r.m)
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// measure performs the three OpenINTEL lookups for one domain.
func (p *Pipeline) measure(ctx context.Context, day simtime.Day, domain string) (store.Measurement, bool) {
	m := store.Measurement{Domain: domain, Day: day}
	nsHosts, err := p.Resolver.LookupNS(ctx, domain)
	if err != nil {
		m.Config.Failed = true
		return m, false
	}
	nx := len(nsHosts) == 0
	m.Config.NSHosts = nsHosts
	seen := make(map[string]struct{}, len(nsHosts))
	for _, h := range nsHosts {
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		addrs, err := p.Resolver.LookupHost(ctx, h, 0)
		if err != nil {
			continue // unreachable NS host: record what we can
		}
		m.Config.NSAddrs = append(m.Config.NSAddrs, addrs...)
	}
	apex, err := p.Resolver.LookupA(ctx, domain)
	if err == nil {
		m.Config.ApexAddrs = apex
	}
	if p.CollectMX {
		if res, err := p.Resolver.Resolve(ctx, domain, dns.TypeMX); err == nil {
			for _, rr := range res.Answers {
				if rr.Type == dns.TypeMX {
					m.Config.MXHosts = append(m.Config.MXHosts, rr.Data.(dns.MXData).Host)
				}
			}
		}
	}
	return m, nx
}

// Schedule produces the sweep days for a study window: monthly snapshots
// until denseFrom, then every denseStep days through the end. The paper's
// long-horizon figures are monthly-granularity while the 2022 analyses
// are daily; this mirrors that without 1,803 full sweeps.
func Schedule(start, end, denseFrom simtime.Day, denseStep int) []simtime.Day {
	if denseStep <= 0 {
		denseStep = 1
	}
	var days []simtime.Day
	for d := start; d <= end && d < denseFrom; {
		days = append(days, d)
		next := d.NextMonth()
		if next <= d {
			break
		}
		d = next
	}
	for d := denseFrom; d <= end; d = d.Add(denseStep) {
		days = append(days, d)
	}
	// Always include the final day so end-of-study numbers exist.
	if n := len(days); n == 0 || days[n-1] != end {
		days = append(days, end)
	}
	return days
}

// Run sweeps every day in the schedule, in order.
func (p *Pipeline) Run(ctx context.Context, schedule []simtime.Day) ([]SweepStats, error) {
	out := make([]SweepStats, 0, len(schedule))
	for _, day := range schedule {
		st, err := p.Sweep(ctx, day)
		if err != nil {
			return out, fmt.Errorf("openintel: sweep %s: %w", day, err)
		}
		out = append(out, st)
	}
	return out, nil
}
