// Package openintel is the active DNS measurement pipeline, modeled on the
// OpenINTEL platform the paper's data comes from (van Rijswijk-Deij et al.,
// JSAC 2016): daily zone-file seeds drive an iterative-resolution sweep
// that records, for every registered domain, its delegated NS set, the A
// records of those name servers, and the A records of the domain apex.
// Sweeps run on a worker pool over any dns.Transport (in-memory for scale,
// UDP for realism) and feed the epoch-compressed measurement store.
package openintel

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whereru/internal/dns"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// Seeder supplies the domain inventory for a sweep day (the daily zone
// snapshot). registry.Group satisfies this.
type Seeder interface {
	ZoneSnapshot(day simtime.Day) []string
}

// Clock moves the simulated world to the sweep day. netsim.Clock
// satisfies this.
type Clock interface {
	Set(day simtime.Day)
}

// Pipeline sweeps the zone and stores measurements.
type Pipeline struct {
	Resolver *dns.Resolver
	Seeds    Seeder
	Clock    Clock
	Store    *store.Store
	// Workers is the sweep concurrency (default 8).
	Workers int
	// CollectMX enables the mail-measurement extension: each domain's MX
	// records are collected alongside NS and A (OpenINTEL collects MX on
	// the real platform too).
	CollectMX bool
	// OnProgress, if set, is called periodically with (done, total).
	OnProgress func(done, total int)
	// Checkpoint, when set, makes collection crash-safe: after every
	// completed sweep (and every skipped day) the pipeline appends a
	// checksummed segment to the journal and fsyncs it before moving on,
	// so a killed run resumes from the first unswept day via
	// ReplayJournal instead of starting over.
	Checkpoint *store.Journal
	// Routes, when set, is the AS-level routing oracle of a scenario run:
	// each measured domain's simulated path latency (summed over its
	// routed server addresses) is folded into the per-domain latency
	// histogram. The histogram is runtime-only — journal and store bytes
	// never see it — so Routes changes reported latency quantiles without
	// touching the determinism contract. The resolver's transport is
	// expected to consult the same oracle for reachability.
	Routes dns.RoutePolicy
}

// SweepStats summarizes one sweep. Beyond the domain-outcome counts it
// quantifies degradation: on a lossy wire a sweep can succeed for nearly
// every domain yet only via retries, and folding that silently into
// Failed (or into nothing) hides exactly the transient-vs-genuine
// distinction the measurement conclusions hinge on.
type SweepStats struct {
	Day      simtime.Day
	Domains  int
	Failed   int
	NXDomain int
	// Retries is the number of re-sent DNS queries during the sweep.
	Retries int
	// Recovered is the number of queries that succeeded only after at
	// least one failed, flapped, or truncated attempt.
	Recovered int
	// Unreachable counts domains whose delegation was measured but none
	// of whose name-server hosts resolved to an address — degraded, not
	// Failed.
	Unreachable int
	// Duration is the sweep's wall-clock time. It is runtime-only: the
	// journal never records it (journal bytes must be identical run to
	// run), so replayed sweeps report zero.
	Duration time.Duration
	// LatencyP50/P90/P99 are per-domain measurement latency quantiles,
	// extracted from a power-of-two-bucket histogram so distributed
	// sweeps can merge worker-side observations exactly. Runtime-only,
	// like Duration.
	LatencyP50, LatencyP90, LatencyP99 time.Duration
	// CacheHits/CacheMisses/CacheCoalesced are the resolver
	// infrastructure-cache counter deltas across the sweep (zone and host
	// caches combined; coalesced counts lookups that waited on another
	// worker's in-flight miss). Runtime-only like Duration: whether a
	// given lookup hits, misses, or coalesces depends on worker
	// scheduling, so these never reach the journal — only the measured
	// answers, which caching cannot change, are journaled.
	CacheHits, CacheMisses, CacheCoalesced int64
}

// latBuckets is the number of latency histogram buckets: power-of-two
// microsecond bounds from 1µs to ~8.4s, plus an overflow bucket.
const latBuckets = 24

// LatencyHistogram counts per-domain measurement durations in
// power-of-two microsecond buckets. Histograms merge by addition, so a
// sweep sharded across grid workers aggregates latency exactly; the
// quantiles read from a merged histogram are identical no matter how the
// work was split.
type LatencyHistogram struct {
	Counts [latBuckets]uint32
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < latBuckets-1 && us > int64(1)<<i {
		i++
	}
	h.Counts[i]++
}

// Merge adds another histogram's counts into h.
func (h *LatencyHistogram) Merge(o *LatencyHistogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// Total returns the number of observations.
func (h *LatencyHistogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += uint64(c)
	}
	return n
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (0 when the histogram is empty). Resolution is the bucket
// width — a factor of two — which is plenty for operator summaries.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += uint64(c)
		if cum >= target {
			return time.Duration(int64(1)<<i) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<(latBuckets-1)) * time.Microsecond
}

// String renders the stats compactly; degradation counters appear only
// when the sweep was degraded.
func (st SweepStats) String() string {
	s := fmt.Sprintf("%s: %d domains, %d failed, %d nxdomain", st.Day, st.Domains, st.Failed, st.NXDomain)
	if st.Retries > 0 || st.Recovered > 0 || st.Unreachable > 0 {
		s += fmt.Sprintf(" (%d retries, %d recovered, %d unreachable)", st.Retries, st.Recovered, st.Unreachable)
	}
	return s
}

// measured is one domain's pool result: the measurement plus the outcome
// flags and how long the three lookups took.
type measured struct {
	m           store.Measurement
	nx          bool
	unreachable bool
	took        time.Duration
	// simLat is the simulated path latency of the domain's routed
	// exchanges (zero without Routes) — virtual time, added to took in
	// the latency histogram but never slept.
	simLat time.Duration
}

// measurePool resolves every domain concurrently with the pipeline's
// worker count and delivers each result to sink from the calling
// goroutine (so sink needs no locking). It is the shared engine under
// Sweep (whole-zone, streaming into the store) and MeasureUnit (one grid
// work unit, no store side effects). On cancellation it returns promptly
// with whatever results already arrived delivered.
func (p *Pipeline) measurePool(ctx context.Context, day simtime.Day, domains []string, sink func(measured)) {
	workers := p.Workers
	if workers <= 0 {
		workers = 8
	}
	if workers > len(domains) && len(domains) > 0 {
		workers = len(domains)
	}

	jobs := make(chan string)
	results := make(chan measured)
	var wg sync.WaitGroup
	var done int64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Scratch buffers live for the worker's whole run; measure
			// reuses them across domains instead of allocating per call.
			var scratch measureScratch
			for domain := range jobs {
				start := time.Now()
				m, nx, unreachable := p.measure(ctx, day, domain, &scratch)
				select {
				case results <- measured{m: m, nx: nx, unreachable: unreachable, took: time.Since(start), simLat: p.simLatency(day, &m)}:
				case <-ctx.Done():
					return
				}
				if p.OnProgress != nil {
					if d := atomic.AddInt64(&done, 1); d%2048 == 0 {
						p.OnProgress(int(d), len(domains))
					}
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, d := range domains {
			select {
			case jobs <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	for r := range results {
		sink(r)
	}
}

// Sweep measures every seeded domain for the given day. It advances the
// world clock, flushes resolver caches (yesterday's delegations must not
// leak into today's view), resolves each domain concurrently, and records
// the results.
func (p *Pipeline) Sweep(ctx context.Context, day simtime.Day) (SweepStats, error) {
	begin := time.Now()
	if p.Clock != nil {
		p.Clock.Set(day)
	}
	p.Resolver.FlushCache()
	seeds := p.Seeds.ZoneSnapshot(day)
	p.Store.BeginSweep(day)

	clientBefore := p.Resolver.Client.Stats()
	cacheBefore := p.Resolver.CacheStats()

	stats := SweepStats{Day: day, Domains: len(seeds)}
	var hist LatencyHistogram
	var collected []store.Measurement
	if p.Checkpoint != nil {
		collected = make([]store.Measurement, 0, len(seeds))
	}
	p.measurePool(ctx, day, seeds, func(r measured) {
		if r.m.Config.Failed {
			stats.Failed++
		}
		if r.nx {
			stats.NXDomain++
		}
		if r.unreachable {
			stats.Unreachable++
		}
		hist.Observe(r.took + r.simLat)
		p.Store.Add(r.m)
		if p.Checkpoint != nil {
			collected = append(collected, r.m)
		}
	})
	clientAfter := p.Resolver.Client.Stats()
	cacheAfter := p.Resolver.CacheStats()
	stats.Retries = int(clientAfter.Retries - clientBefore.Retries)
	stats.Recovered = int(clientAfter.Recovered - clientBefore.Recovered)
	stats.CacheHits = cacheAfter.Hits() - cacheBefore.Hits()
	stats.CacheMisses = cacheAfter.Misses() - cacheBefore.Misses()
	stats.CacheCoalesced = cacheAfter.Coalesced - cacheBefore.Coalesced
	stats.Duration = time.Since(begin)
	stats.LatencyP50 = hist.Quantile(0.50)
	stats.LatencyP90 = hist.Quantile(0.90)
	stats.LatencyP99 = hist.Quantile(0.99)
	if err := ctx.Err(); err != nil {
		// A cancelled sweep is incomplete: it must not reach the journal,
		// or resume would trust a partial day as collected.
		return stats, err
	}
	if p.Checkpoint != nil {
		if err := p.Checkpoint.AppendSweep(journalRecord(stats, collected)); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// UnitResult is what measuring one contiguous slice of the day's
// inventory produces: the measurements sorted by domain, the outcome
// tallies Sweep would have accumulated for them, and the per-domain
// latency histogram. It carries no store or journal side effects — the
// grid coordinator merges unit results deterministically and commits the
// sweep in one place.
type UnitResult struct {
	// Measurements holds one measurement per requested domain, sorted by
	// domain name.
	Measurements []store.Measurement
	Failed       int
	NXDomain     int
	Unreachable  int
	// Retries/Recovered are the resolver client's counter deltas across
	// the unit.
	Retries   int
	Recovered int
	// CacheHits/CacheMisses/CacheCoalesced are the resolver
	// infrastructure-cache counter deltas across the unit (workers
	// process units serially, so per-unit deltas are exact).
	CacheHits, CacheMisses, CacheCoalesced int64
	// Latency is the per-domain measurement latency histogram.
	Latency LatencyHistogram
}

// MeasureUnit resolves a contiguous slice of the day's inventory without
// touching the store or the journal: the worker half of a distributed
// sweep (internal/grid). The caller is responsible for day context — the
// world clock must be at day and the resolver cache flushed at day
// boundaries, exactly as Sweep does for a whole zone. A cancelled unit
// returns the context error; partial results are discarded by callers.
func (p *Pipeline) MeasureUnit(ctx context.Context, day simtime.Day, domains []string) (UnitResult, error) {
	clientBefore := p.Resolver.Client.Stats()
	cacheBefore := p.Resolver.CacheStats()
	res := UnitResult{Measurements: make([]store.Measurement, 0, len(domains))}
	p.measurePool(ctx, day, domains, func(r measured) {
		if r.m.Config.Failed {
			res.Failed++
		}
		if r.nx {
			res.NXDomain++
		}
		if r.unreachable {
			res.Unreachable++
		}
		res.Latency.Observe(r.took + r.simLat)
		res.Measurements = append(res.Measurements, r.m)
	})
	clientAfter := p.Resolver.Client.Stats()
	cacheAfter := p.Resolver.CacheStats()
	res.Retries = int(clientAfter.Retries - clientBefore.Retries)
	res.Recovered = int(clientAfter.Recovered - clientBefore.Recovered)
	res.CacheHits = cacheAfter.Hits() - cacheBefore.Hits()
	res.CacheMisses = cacheAfter.Misses() - cacheBefore.Misses()
	res.CacheCoalesced = cacheAfter.Coalesced - cacheBefore.Coalesced
	if err := ctx.Err(); err != nil {
		return res, err
	}
	sort.Slice(res.Measurements, func(i, j int) bool {
		return res.Measurements[i].Domain < res.Measurements[j].Domain
	})
	return res, nil
}

// CommitSweep records an externally-measured sweep: it registers the day,
// adds every measurement to the store, and journals the sweep when
// checkpointing — the commit half of Sweep, used by the grid coordinator
// after merging worker results. Measurements must all carry stats.Day;
// their order does not affect the store or journal bytes (the store is
// per-domain and the journal sorts), but callers pass shard order so the
// commit is reproducible end to end.
func (p *Pipeline) CommitSweep(stats SweepStats, ms []store.Measurement) error {
	p.Store.BeginSweep(stats.Day)
	for _, m := range ms {
		p.Store.Add(m)
	}
	if p.Checkpoint != nil {
		if err := p.Checkpoint.AppendSweep(journalRecord(stats, ms)); err != nil {
			return err
		}
	}
	return nil
}

func journalRecord(st SweepStats, ms []store.Measurement) store.JournalSweep {
	return store.JournalSweep{
		Day: st.Day,
		Stats: store.JournalStats{
			Domains:     st.Domains,
			Failed:      st.Failed,
			NXDomain:    st.NXDomain,
			Retries:     st.Retries,
			Recovered:   st.Recovered,
			Unreachable: st.Unreachable,
		},
		Measurements: ms,
	}
}

// SkipSweep records a scheduled day on which collection deliberately did
// not run (a simulated outage or an operator-dropped day): the store
// marks it missing so the analyses flag it as a gap, and the journal —
// when checkpointing — remembers the decision so a resumed run does not
// collect the day after all.
func (p *Pipeline) SkipSweep(day simtime.Day) error {
	p.Store.MarkMissingSweep(day)
	if p.Checkpoint != nil {
		return p.Checkpoint.AppendSweep(store.JournalSweep{Day: day, Missing: true})
	}
	return nil
}

// ReplayJournal applies previously journaled sweeps to the store in
// order, reconstructing the per-sweep stats a live run would have
// produced. Sweeps replay as measurements, missing-day markers as gap
// records; the caller resumes collection from the first day the replay
// does not cover.
func (p *Pipeline) ReplayJournal(replay *store.JournalReplay) []SweepStats {
	out := make([]SweepStats, 0, len(replay.Sweeps))
	for _, rec := range replay.Sweeps {
		if rec.Missing {
			p.Store.MarkMissingSweep(rec.Day)
			continue
		}
		p.Store.BeginSweep(rec.Day)
		for _, m := range rec.Measurements {
			p.Store.Add(m)
		}
		out = append(out, SweepStats{
			Day:         rec.Day,
			Domains:     rec.Stats.Domains,
			Failed:      rec.Stats.Failed,
			NXDomain:    rec.Stats.NXDomain,
			Retries:     rec.Stats.Retries,
			Recovered:   rec.Stats.Recovered,
			Unreachable: rec.Stats.Unreachable,
		})
	}
	return out
}

// Covered returns the set of schedule days a replay already handled
// (collected or deliberately skipped).
func Covered(replay *store.JournalReplay) map[simtime.Day]bool {
	done := make(map[simtime.Day]bool, len(replay.Sweeps))
	for _, rec := range replay.Sweeps {
		done[rec.Day] = true
	}
	return done
}

// measureScratch holds per-worker buffers measure reuses across domains.
type measureScratch struct {
	nsAddrs []netip.Addr
}

// measure performs the three OpenINTEL lookups for one domain. The
// unreachable result marks a domain whose delegation answered but whose
// name-server hosts all failed to resolve to an address.
func (p *Pipeline) measure(ctx context.Context, day simtime.Day, domain string, scratch *measureScratch) (store.Measurement, bool, bool) {
	m := store.Measurement{Domain: domain, Day: day}
	nsHosts, err := p.Resolver.LookupNS(ctx, domain)
	if err != nil {
		m.Config.Failed = true
		return m, false, false
	}
	nx := len(nsHosts) == 0
	m.Config.NSHosts = nsHosts
	// NS sets are ≤4 hosts in the common case, so a linear duplicate scan
	// over the earlier hosts replaces the per-domain seen map, and the
	// worker's scratch buffer absorbs the address appends; the config
	// keeps one exact-size copy.
	nsAddrs := scratch.nsAddrs[:0]
	for i, h := range nsHosts {
		if hostSeenBefore(nsHosts[:i], h) {
			continue
		}
		addrs, err := p.Resolver.LookupHost(ctx, h, 0)
		if err != nil {
			continue // unreachable NS host: record what we can
		}
		nsAddrs = append(nsAddrs, addrs...)
	}
	scratch.nsAddrs = nsAddrs[:0]
	if len(nsAddrs) > 0 {
		m.Config.NSAddrs = append(make([]netip.Addr, 0, len(nsAddrs)), nsAddrs...)
	}
	unreachable := len(nsHosts) > 0 && len(m.Config.NSAddrs) == 0
	apex, err := p.Resolver.LookupA(ctx, domain)
	if err == nil {
		m.Config.ApexAddrs = apex
	}
	if p.CollectMX {
		if res, err := p.Resolver.Resolve(ctx, domain, dns.TypeMX); err == nil {
			n := 0
			for _, rr := range res.Answers {
				if rr.Type == dns.TypeMX {
					n++
				}
			}
			if n > 0 {
				m.Config.MXHosts = make([]string, 0, n)
				for _, rr := range res.Answers {
					if rr.Type == dns.TypeMX {
						m.Config.MXHosts = append(m.Config.MXHosts, rr.Data.(dns.MXData).Host)
					}
				}
			}
		}
	}
	return m, nx, unreachable
}

// simLatency sums the simulated path round-trip latency over a
// measurement's routed server addresses (name servers and apex hosts).
// Unreachable addresses contribute nothing — their cost already shows up
// as missing records.
func (p *Pipeline) simLatency(day simtime.Day, m *store.Measurement) time.Duration {
	if p.Routes == nil {
		return 0
	}
	var total time.Duration
	for _, a := range m.Config.NSAddrs {
		if lat, ok := p.Routes.Route(day, a); ok {
			total += lat
		}
	}
	for _, a := range m.Config.ApexAddrs {
		if lat, ok := p.Routes.Route(day, a); ok {
			total += lat
		}
	}
	return total
}

// hostSeenBefore reports whether h already occurred among the earlier
// hosts of the same NS set (sets are tiny; no map needed).
func hostSeenBefore(earlier []string, h string) bool {
	for _, e := range earlier {
		if e == h {
			return true
		}
	}
	return false
}

// Schedule produces the sweep days for a study window: monthly snapshots
// until denseFrom, then every denseStep days through the end. The paper's
// long-horizon figures are monthly-granularity while the 2022 analyses
// are daily; this mirrors that without 1,803 full sweeps.
func Schedule(start, end, denseFrom simtime.Day, denseStep int) []simtime.Day {
	if denseStep <= 0 {
		denseStep = 1
	}
	if end < start {
		return nil
	}
	if denseFrom < start {
		// A dense window opening before the study does starts with it:
		// sweeps must never predate the first zone snapshot.
		denseFrom = start
	}
	var days []simtime.Day
	for d := start; d <= end && d < denseFrom; {
		days = append(days, d)
		next := d.NextMonth()
		if next <= d {
			break
		}
		d = next
	}
	for d := denseFrom; d <= end; d = d.Add(denseStep) {
		days = append(days, d)
	}
	// Always include the final day so end-of-study numbers exist.
	if n := len(days); n == 0 || days[n-1] != end {
		days = append(days, end)
	}
	return days
}

// Run sweeps every day in the schedule, in order.
func (p *Pipeline) Run(ctx context.Context, schedule []simtime.Day) ([]SweepStats, error) {
	out := make([]SweepStats, 0, len(schedule))
	for _, day := range schedule {
		st, err := p.Sweep(ctx, day)
		if err != nil {
			return out, fmt.Errorf("openintel: sweep %s: %w", day, err)
		}
		out = append(out, st)
	}
	return out, nil
}
