package scan

import (
	"net/netip"
	"testing"

	"whereru/internal/pki"
	"whereru/internal/simtime"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func chain(ca *pki.CA, day simtime.Day, name string) []*pki.Certificate {
	c, err := ca.Issue(day, name)
	if err != nil {
		panic(err)
	}
	return []*pki.Certificate{c}
}

func TestSweepCollectsServingHosts(t *testing.T) {
	s := NewScanner()
	le := pki.NewCA(1, pki.LetsEncrypt, nil, 90)
	rtr := pki.NewCA(11, pki.RussianTrustedRootCA, nil, 365)
	rtr.LogsToCT = false

	day := simtime.MustParse("2022-03-20")
	leChain := chain(le, day.Add(-10), "shop.ru")
	rtrChain := chain(rtr, day.Add(-3), "vtb.ru")

	s.Register(ip("11.0.0.1"), func(d simtime.Day) []*pki.Certificate { return leChain })
	s.Register(ip("11.0.0.2"), func(d simtime.Day) []*pki.Certificate {
		if d >= day {
			return rtrChain
		}
		return nil
	})
	s.Register(ip("11.0.0.3"), func(simtime.Day) []*pki.Certificate { return nil }) // no TLS

	if s.NumEndpoints() != 3 {
		t.Fatalf("NumEndpoints = %d", s.NumEndpoints())
	}
	obs := s.Sweep(day.Add(-1))
	if len(obs) != 1 || obs[0].Addr != ip("11.0.0.1") {
		t.Fatalf("pre-cutover sweep = %+v", obs)
	}
	obs = s.Sweep(day)
	if len(obs) != 2 {
		t.Fatalf("post-cutover sweep = %+v", obs)
	}
	// Sorted by address.
	if !obs[0].Addr.Less(obs[1].Addr) {
		t.Fatal("observations not sorted")
	}

	s.Unregister(ip("11.0.0.1"))
	if got := s.Sweep(day); len(got) != 1 {
		t.Fatalf("after Unregister sweep = %d", len(got))
	}
}

func TestArchive(t *testing.T) {
	s := NewScanner()
	le := pki.NewCA(1, pki.LetsEncrypt, nil, 90)
	rtr := pki.NewCA(11, pki.RussianTrustedRootCA, nil, 365)
	rtr.LogsToCT = false

	start := simtime.MustParse("2022-03-10")
	leChain := chain(le, start, "a.ru")
	rtrChain := chain(rtr, start, "b.ru")
	s.Register(ip("11.0.0.1"), func(simtime.Day) []*pki.Certificate { return leChain })
	s.Register(ip("11.0.0.2"), func(simtime.Day) []*pki.Certificate { return rtrChain })

	a := NewArchive()
	for d := start; d < start.Add(5); d++ {
		a.Record(d, s.Sweep(d))
	}
	if days := a.Days(); len(days) != 5 || days[0] != start {
		t.Fatalf("Days = %v", days)
	}
	all := a.UniqueCerts(nil)
	if len(all) != 2 {
		t.Fatalf("UniqueCerts = %d, want 2 (dedup across days)", len(all))
	}
	russian := a.UniqueCerts(func(c *pki.Certificate) bool { return c.RootOrg == pki.RussianTrustedRootCA })
	if len(russian) != 1 || russian[0].SubjectCN != "b.ru." {
		t.Fatalf("russian certs = %+v", russian)
	}
	if fs, ok := a.FirstSeen(russian[0].Serial); !ok || fs != start {
		t.Fatalf("FirstSeen = %v, %v", fs, ok)
	}
	if _, ok := a.FirstSeen(999999); ok {
		t.Fatal("FirstSeen of unseen serial")
	}
	if got := a.Observations(start); len(got) != 2 {
		t.Fatalf("Observations = %d", len(got))
	}
	if got := a.Observations(start.Add(99)); got != nil {
		t.Fatal("Observations for unscanned day non-nil")
	}
}

func BenchmarkSweep(b *testing.B) {
	s := NewScanner()
	le := pki.NewCA(1, pki.LetsEncrypt, nil, 90)
	for i := 0; i < 500; i++ {
		c := chain(le, 0, "bench.ru")
		s.Register(netip.AddrFrom4([4]byte{11, byte(i / 250), byte(i % 250), 1}),
			func(simtime.Day) []*pki.Certificate { return c })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Sweep(0); len(got) != 500 {
			b.Fatal("wrong sweep size")
		}
	}
}
