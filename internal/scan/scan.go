// Package scan is the reproduction's Censys Universal Internet Data Set
// (CUIDS) analog: a daily Internet-wide "TLS scan" over the simulated
// address plan that records which certificate chains responding hosts
// serve. Scanning observes certificates in active use — a subset of
// issued certificates, and the only place certificates from the
// non-CT-logging Russian Trusted Root CA can be seen (§4.3).
package scan

import (
	"net/netip"
	"sort"
	"sync"

	"whereru/internal/pki"
	"whereru/internal/simtime"
)

// ChainProvider reports the certificate chain (leaf first) an endpoint
// serves on a given day, or nil when the endpoint serves no TLS that day.
type ChainProvider func(day simtime.Day) []*pki.Certificate

// Scanner holds the registry of TLS endpoints in the simulated Internet.
type Scanner struct {
	mu        sync.RWMutex
	endpoints map[netip.Addr]ChainProvider
}

// NewScanner returns an empty endpoint registry.
func NewScanner() *Scanner {
	return &Scanner{endpoints: make(map[netip.Addr]ChainProvider)}
}

// Register binds a chain provider to an address (replacing any previous).
func (s *Scanner) Register(addr netip.Addr, p ChainProvider) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[addr] = p
}

// Unregister removes an endpoint.
func (s *Scanner) Unregister(addr netip.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.endpoints, addr)
}

// NumEndpoints returns the number of registered endpoints.
func (s *Scanner) NumEndpoints() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.endpoints)
}

// Observation is one responding host in one day's scan.
type Observation struct {
	Addr  netip.Addr
	Day   simtime.Day
	Chain []*pki.Certificate // leaf first
}

// Sweep scans every endpoint on the given day and returns observations
// from hosts that presented a certificate, sorted by address.
func (s *Scanner) Sweep(day simtime.Day) []Observation {
	s.mu.RLock()
	addrs := make([]netip.Addr, 0, len(s.endpoints))
	for a := range s.endpoints {
		addrs = append(addrs, a)
	}
	providers := make([]ChainProvider, len(addrs))
	for i, a := range addrs {
		providers[i] = s.endpoints[a]
	}
	s.mu.RUnlock()

	var out []Observation
	for i, a := range addrs {
		if chain := providers[i](day); len(chain) > 0 {
			out = append(out, Observation{Addr: a, Day: day, Chain: chain})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Archive accumulates scan observations over time and answers the
// §4.3-style questions ("which unique certificates chaining to CA X were
// ever seen serving?").
type Archive struct {
	mu   sync.RWMutex
	days map[simtime.Day][]Observation
	// uniq indexes every certificate ever observed, by serial.
	uniq map[uint64]*pki.Certificate
	// firstSeen records the first scan day each serial appeared.
	firstSeen map[uint64]simtime.Day
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{
		days:      make(map[simtime.Day][]Observation),
		uniq:      make(map[uint64]*pki.Certificate),
		firstSeen: make(map[uint64]simtime.Day),
	}
}

// Record stores one day's observations.
func (a *Archive) Record(day simtime.Day, obs []Observation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.days[day] = obs
	for _, o := range obs {
		for _, c := range o.Chain {
			if _, ok := a.uniq[c.Serial]; !ok {
				a.uniq[c.Serial] = c
				a.firstSeen[c.Serial] = day
			}
		}
	}
}

// Days returns the recorded scan days, sorted.
func (a *Archive) Days() []simtime.Day {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]simtime.Day, 0, len(a.days))
	for d := range a.days {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UniqueCerts returns every distinct certificate ever observed that
// satisfies pred (nil = all), sorted by serial.
func (a *Archive) UniqueCerts(pred func(*pki.Certificate) bool) []*pki.Certificate {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []*pki.Certificate
	for _, c := range a.uniq {
		if pred == nil || pred(c) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}

// FirstSeen returns the first scan day a serial was observed.
func (a *Archive) FirstSeen(serial uint64) (simtime.Day, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	d, ok := a.firstSeen[serial]
	return d, ok
}

// Observations returns the stored observations for one day.
func (a *Archive) Observations(day simtime.Day) []Observation {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.days[day]
}
