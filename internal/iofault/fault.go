package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Errors the fault layer injects. Each wraps ErrInjected so callers can
// distinguish injected failures from real ones, and ErrDiskFull also
// wraps syscall.ENOSPC so code written against the real errno keeps
// working.
var (
	// ErrInjected marks every error produced by the fault layer.
	ErrInjected = errors.New("iofault: injected fault")
	// ErrDiskFull is the injected ENOSPC: the write consumed whatever
	// budget remained (a short write, exactly as a full disk delivers
	// one) and then failed.
	ErrDiskFull = fmt.Errorf("iofault: disk full: %w (%w)", syscall.ENOSPC, ErrInjected)
	// ErrWriteFault is an injected whole-write failure (EIO-shaped: no
	// bytes reach the file).
	ErrWriteFault = fmt.Errorf("iofault: write error (%w)", ErrInjected)
	// ErrShortWrite is an injected short write: a seed-chosen prefix
	// reached the file, the rest did not.
	ErrShortWrite = fmt.Errorf("iofault: short write: %w (%w)", io.ErrShortWrite, ErrInjected)
	// ErrSyncFault is an injected fsync failure — the lying-fsync case:
	// the data may or may not be durable, and the caller must assume not.
	ErrSyncFault = fmt.Errorf("iofault: fsync error (%w)", ErrInjected)
	// ErrRenameFault is an injected rename failure: the target is
	// untouched, the source still exists.
	ErrRenameFault = fmt.Errorf("iofault: rename error (%w)", ErrInjected)
)

// Crash is the panic value delivered when a crash trigger fires: the
// simulated hard kill, thrown mid-write after exactly the configured
// prefix reached the file. Harnesses recover it; cmd/whereru installs a
// hook that exits the process instead.
type Crash struct {
	// Op names the operation that was executing ("write").
	Op string
	// TotalBytes is the fault filesystem's global written-byte count at
	// the instant of the crash — the byte offset the crash reproduces at.
	TotalBytes int64
}

func (c *Crash) Error() string {
	return fmt.Sprintf("iofault: crash injected during %s at byte %d", c.Op, c.TotalBytes)
}

// Profile configures a FaultFS. The zero value injects nothing.
//
// Deterministic triggers fire exactly once at a configured point:
// CrashAtByte and DiskFullAtByte count bytes written through the whole
// filesystem (all files combined — the disk is shared), FailSyncOp and
// FailRenameOp count operations. Probabilistic faults roll a pure hash
// of (seed, op-index) per operation, so with a fixed seed the same
// op-index misbehaves in every run regardless of what the bytes are.
type Profile struct {
	// CrashAtByte > 0 simulates a hard kill mid-write: once the
	// filesystem's cumulative written-byte count reaches it, the write
	// in flight stores exactly the prefix that fits below the limit and
	// the Crash hook fires (default: panic(*Crash)).
	CrashAtByte int64
	// DiskFullAtByte > 0 simulates ENOSPC: writes consume bytes up to
	// the limit, then fail with ErrDiskFull (short write first, like a
	// real full disk).
	DiskFullAtByte int64
	// FailSyncOp > 0 fails the n-th Sync or SyncDir (1-based, counted
	// across the filesystem) with ErrSyncFault.
	FailSyncOp int
	// FailRenameOp > 0 fails the n-th Rename (1-based) with
	// ErrRenameFault, leaving source and target untouched — the torn
	// rename.
	FailRenameOp int
	// WriteErrProb is the probability a write fails whole (no bytes
	// written, ErrWriteFault).
	WriteErrProb float64
	// ShortWriteProb is the probability a write stores only a
	// seed-chosen strict prefix and returns ErrShortWrite.
	ShortWriteProb float64
	// ShortReadProb is the probability a read returns a seed-chosen
	// strict prefix of what the file delivered (legal for io.Reader;
	// exercises ReadFull/bufio reassembly in callers).
	ShortReadProb float64
	// ReadBitFlipProb is the probability a read's returned buffer has
	// one seed-chosen bit flipped — bit rot on the read path; the file
	// itself is unharmed.
	ReadBitFlipProb float64
	// Crash overrides what happens when CrashAtByte fires. nil panics
	// with *Crash (recoverable by a harness); cmd/whereru exits the
	// process for subprocess-level chaos tests.
	Crash func(c *Crash)
}

func (p *Profile) active() bool {
	return p.CrashAtByte > 0 || p.DiskFullAtByte > 0 || p.FailSyncOp > 0 || p.FailRenameOp > 0 ||
		p.WriteErrProb > 0 || p.ShortWriteProb > 0 || p.ShortReadProb > 0 || p.ReadBitFlipProb > 0
}

// ParseProfile parses the comma-separated fault spec the CLI exposes
// (`whereru -io-fault`):
//
//	crash@N       crash mid-write once N total bytes are written
//	enospc@N      ENOSPC once N total bytes are written
//	syncfail@K    the K-th fsync fails
//	renamefail@K  the K-th rename fails
//	writeerr:P    each write fails whole with probability P
//	shortwrite:P  each write is torn short with probability P
//	shortread:P   each read returns a prefix with probability P
//	readflip:P    each read has one bit flipped with probability P
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, arg, at := tok, "", false
		if i := strings.IndexAny(tok, "@:"); i >= 0 {
			name, arg, at = tok[:i], tok[i+1:], tok[i] == '@'
		}
		switch {
		case name == "crash" && at:
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("iofault: bad crash offset %q", arg)
			}
			p.CrashAtByte = n
		case name == "enospc" && at:
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("iofault: bad enospc offset %q", arg)
			}
			p.DiskFullAtByte = n
		case name == "syncfail" && at:
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("iofault: bad syncfail op %q", arg)
			}
			p.FailSyncOp = n
		case name == "renamefail" && at:
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("iofault: bad renamefail op %q", arg)
			}
			p.FailRenameOp = n
		case !at && (name == "writeerr" || name == "shortwrite" || name == "shortread" || name == "readflip"):
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || v < 0 || v > 1 {
				return p, fmt.Errorf("iofault: bad probability %q for %s", arg, name)
			}
			switch name {
			case "writeerr":
				p.WriteErrProb = v
			case "shortwrite":
				p.ShortWriteProb = v
			case "shortread":
				p.ShortReadProb = v
			case "readflip":
				p.ReadBitFlipProb = v
			}
		default:
			return p, fmt.Errorf("iofault: unknown fault %q (want crash@N, enospc@N, syncfail@K, renamefail@K, writeerr:P, shortwrite:P, shortread:P, readflip:P)", tok)
		}
	}
	return p, nil
}

// Stats counts what a FaultFS saw and did.
type Stats struct {
	// Ops is the number of fault-decision points passed (every read,
	// write, sync and rename increments it).
	Ops uint64
	// BytesWritten is the cumulative written-byte count — the axis
	// CrashAtByte and DiskFullAtByte are sampled on.
	BytesWritten int64
	// Injected counts operations that misbehaved.
	Injected int64
	// Crashed reports whether the crash trigger fired.
	Crashed bool
}

// FaultFS wraps an FS so every file it opens injects the profile's
// faults. One FaultFS models one disk: byte and op counters are global
// across its files, exactly as ENOSPC and power loss are.
//
// The durability paths this wraps are sequential (journal appends, one
// atomic store write at a time), so op order — and with it each
// operation's fate — is deterministic for a fixed seed. Concurrent use
// is safe but op-indices then depend on scheduling, like any shared
// disk.
type FaultFS struct {
	inner FS
	seed  uint64

	mu      sync.Mutex
	profile Profile
	ops     uint64
	bytes   int64
	syncs   int
	renames int
	stats   Stats
}

// NewFaultFS wraps inner with a deterministic fault profile.
func NewFaultFS(inner FS, seed int64, p Profile) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, seed: uint64(seed), profile: p}
}

// SetProfile replaces the fault profile (counters keep running).
func (f *FaultFS) SetProfile(p Profile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.profile = p
}

// Stats snapshots the counters.
func (f *FaultFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Ops = f.ops
	st.BytesWritten = f.bytes
	return st
}

// Hash salts separating the independent fault decisions of one op.
const (
	saltWriteErr  = 0x9E3779B97F4A7C15
	saltShortW    = 0xC2B2AE3D27D4EB4F
	saltShortLen  = 0x165667B19E3779F9
	saltShortRead = 0x27D4EB2F165667C5
	saltReadFlip  = 0x85EBCA77C2B2AE63
	saltFlipPos   = 0x2545F4914F6CDD1D
)

// roll derives a uniform float64 in [0,1) from (seed, op-index, salt) —
// the same FNV-1a construction dns.FaultTransport uses, so a failure
// observed once is replayable from the pair forever.
func roll(seed, op, salt uint64) float64 {
	return float64(hash64(seed, op, salt)>>11) / float64(1<<53)
}

func hash64(seed, op, salt uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [3]uint64{salt, seed, op} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	return h
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.ops++
	f.renames++
	fail := f.profile.FailRenameOp > 0 && f.renames == f.profile.FailRenameOp
	if fail {
		f.stats.Injected++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("iofault: rename %s -> %s: %w", oldpath, newpath, ErrRenameFault)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.syncFault(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// syncFault is the shared Sync/SyncDir decision: both are fsync(2).
func (f *FaultFS) syncFault() error {
	f.mu.Lock()
	f.ops++
	f.syncs++
	fail := f.profile.FailSyncOp > 0 && f.syncs == f.profile.FailSyncOp
	if fail {
		f.stats.Injected++
	}
	f.mu.Unlock()
	if fail {
		return ErrSyncFault
	}
	return nil
}

// faultFile injects the filesystem's profile into one file's I/O.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(b []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	op := f.ops
	f.ops++
	p := f.profile
	total := f.bytes

	if p.WriteErrProb > 0 && roll(f.seed, op, saltWriteErr) < p.WriteErrProb {
		f.stats.Injected++
		f.mu.Unlock()
		return 0, ErrWriteFault
	}

	// allowed is how much of b reaches the file; errAfter is what the
	// caller is told afterwards; crash fires the hook after writing.
	allowed, errAfter, crash := len(b), error(nil), false
	if p.ShortWriteProb > 0 && len(b) > 1 && roll(f.seed, op, saltShortW) < p.ShortWriteProb {
		// A strict prefix: at least 0, at most len(b)-1 bytes.
		allowed = int(hash64(f.seed, op, saltShortLen) % uint64(len(b)))
		errAfter = ErrShortWrite
	}
	if p.DiskFullAtByte > 0 && total+int64(allowed) > p.DiskFullAtByte {
		if rem := p.DiskFullAtByte - total; int64(allowed) > rem {
			if rem < 0 {
				rem = 0
			}
			allowed = int(rem)
		}
		errAfter = ErrDiskFull
	}
	if p.CrashAtByte > 0 && !f.stats.Crashed && total+int64(allowed) >= p.CrashAtByte {
		allowed = int(p.CrashAtByte - total)
		if allowed < 0 {
			allowed = 0
		}
		f.stats.Crashed = true
		crash = true
	}
	if errAfter != nil || crash {
		f.stats.Injected++
	}
	hook := p.Crash
	f.mu.Unlock()

	n := 0
	var err error
	if allowed > 0 {
		n, err = ff.inner.Write(b[:allowed])
	}
	f.mu.Lock()
	f.bytes += int64(n)
	at := f.bytes
	f.mu.Unlock()
	if crash {
		// Make the torn prefix visible to the "rebooted" observer the
		// way a kernel would have: whatever Write returned is in the
		// page cache already; the harness reopens the file and sees it.
		c := &Crash{Op: "write", TotalBytes: at}
		if hook != nil {
			hook(c)
		}
		panic(c)
	}
	if err != nil {
		return n, err
	}
	if errAfter != nil {
		return n, errAfter
	}
	return n, nil
}

func (ff *faultFile) Read(b []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	op := f.ops
	f.ops++
	p := f.profile
	short := p.ShortReadProb > 0 && len(b) > 1 && roll(f.seed, op, saltShortRead) < p.ShortReadProb
	flip := p.ReadBitFlipProb > 0 && roll(f.seed, op, saltReadFlip) < p.ReadBitFlipProb
	if short || flip {
		f.stats.Injected++
	}
	f.mu.Unlock()

	if short {
		// Ask the file for a strict prefix (≥1 byte so EOF semantics are
		// untouched); callers using io.ReadFull/bufio must reassemble.
		b = b[:1+int(hash64(f.seed, op, saltShortLen)%uint64(len(b)-1))]
	}
	n, err := ff.inner.Read(b)
	if flip && n > 0 {
		h := hash64(f.seed, op, saltFlipPos)
		b[int(h%uint64(n))] ^= 1 << (h >> 56 % 8)
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.syncFault(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.inner.Seek(offset, whence)
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

func (ff *faultFile) Truncate(size int64) error { return ff.inner.Truncate(size) }

func (ff *faultFile) Stat() (fs.FileInfo, error) { return ff.inner.Stat() }

func (ff *faultFile) Name() string { return ff.inner.Name() }
