package iofault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

func writeAll(t *testing.T, fsys FS, path string, chunks ...[]byte) error {
	t.Helper()
	f, err := Create(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			return err
		}
	}
	return f.Sync()
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := writeAll(t, OS, path, []byte("hello "), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	if err := OS.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

func TestCrashAtByteWritesExactPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	payload := bytes.Repeat([]byte("0123456789"), 10) // 100 bytes
	for _, crashAt := range []int64{1, 7, 37, 99} {
		ffs := NewFaultFS(OS, 42, Profile{CrashAtByte: crashAt})
		func() {
			defer func() {
				c, ok := recover().(*Crash)
				if !ok {
					t.Fatalf("crashAt=%d: expected *Crash panic", crashAt)
				}
				if c.TotalBytes != crashAt {
					t.Errorf("crashAt=%d: crashed at %d", crashAt, c.TotalBytes)
				}
			}()
			f, err := Create(ffs, path)
			if err != nil {
				t.Fatal(err)
			}
			// Two writes so crashes can land mid-stream of either.
			f.Write(payload[:50])
			f.Write(payload[50:])
			t.Fatalf("crashAt=%d: no crash fired", crashAt)
		}()
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload[:crashAt]) {
			t.Errorf("crashAt=%d: file holds %d bytes, want the exact %d-byte prefix", crashAt, len(got), crashAt)
		}
		if !ffs.Stats().Crashed {
			t.Errorf("crashAt=%d: stats do not report the crash", crashAt)
		}
	}
}

func TestCrashHookOverride(t *testing.T) {
	fired := false
	ffs := NewFaultFS(OS, 1, Profile{
		CrashAtByte: 3,
		Crash:       func(c *Crash) { fired = true; panic(c) },
	})
	func() {
		defer func() { recover() }()
		writeAll(t, ffs, filepath.Join(t.TempDir(), "f"), []byte("abcdef"))
	}()
	if !fired {
		t.Fatal("crash hook not invoked")
	}
}

func TestDiskFullShortWriteThenError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	ffs := NewFaultFS(OS, 7, Profile{DiskFullAtByte: 5})
	err := writeAll(t, ffs, path, []byte("abc"), []byte("defg"))
	if !errors.Is(err, ErrDiskFull) || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrDiskFull wrapping ENOSPC and ErrInjected", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abcde" {
		t.Fatalf("disk holds %q, want the 5 bytes that fit", got)
	}
	// The full disk stays full: later writes fail too.
	if err := writeAll(t, ffs, path, []byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("write on full disk: %v", err)
	}
}

func TestFailSyncAndRenameOps(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 3, Profile{FailSyncOp: 2})
	f, err := Create(ffs, filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFault) {
		t.Fatalf("second sync = %v, want ErrSyncFault", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync: %v", err)
	}
	f.Close()

	rfs := NewFaultFS(OS, 3, Profile{FailRenameOp: 1})
	src := filepath.Join(dir, "src")
	os.WriteFile(src, []byte("x"), 0o644)
	if err := rfs.Rename(src, filepath.Join(dir, "dst")); !errors.Is(err, ErrRenameFault) {
		t.Fatalf("rename = %v, want ErrRenameFault", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("failed rename moved the source: %v", err)
	}
	if err := rfs.Rename(src, filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}

// TestProbabilisticFaultsDeterministic: the same seed injects the same
// faults at the same op-indices; a different seed diverges.
func TestProbabilisticFaultsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, seed, Profile{ShortWriteProb: 0.3, WriteErrProb: 0.2})
		f, err := Create(ffs, filepath.Join(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		outcomes := make([]bool, 200)
		for i := range outcomes {
			_, err := f.Write([]byte("0123456789"))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b, c := run(11), run(11), run(12)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different fault schedules")
	}
	if !diff {
		t.Error("different seeds produced identical fault schedules")
	}
	n := 0
	for _, hit := range a {
		if hit {
			n++
		}
	}
	if n < 40 || n > 160 {
		t.Errorf("injected %d/200 faults, implausible for combined p≈0.44", n)
	}
}

func TestReadFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	payload := bytes.Repeat([]byte{0xAA}, 4096)
	os.WriteFile(path, payload, 0o644)

	// Short reads never lose bytes, only defer them.
	sfs := NewFaultFS(OS, 5, Profile{ShortReadProb: 0.8})
	f, err := Open(sfs, path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("short-read stream corrupted the data: err=%v len=%d", err, len(got))
	}
	if sfs.Stats().Injected == 0 {
		t.Fatal("no short reads injected at p=0.8")
	}

	// Bit flips damage the returned bytes, not the file.
	bfs := NewFaultFS(OS, 5, Profile{ReadBitFlipProb: 1})
	f2, _ := Open(bfs, path)
	flipped, _ := io.ReadAll(f2)
	f2.Close()
	if bytes.Equal(flipped, payload) {
		t.Fatal("ReadBitFlipProb=1 returned pristine bytes")
	}
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, payload) {
		t.Fatal("read fault damaged the file itself")
	}
}

func TestWriteAtomicReplacesOrPreserves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store")
	old := []byte("previous good store")
	os.WriteFile(path, old, 0o644)
	newContent := bytes.Repeat([]byte("new!"), 64)

	// Clean replace.
	if err := WriteAtomic(OS, path, func(w io.Writer) error { _, err := w.Write(newContent); return err }); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, newContent) {
		t.Fatal("clean WriteAtomic did not replace")
	}

	// Every failure mode must leave the previous content untouched and
	// no temp file behind.
	cases := []struct {
		name string
		p    Profile
	}{
		{"enospc", Profile{DiskFullAtByte: 10}},
		{"writeerr", Profile{WriteErrProb: 1}},
		{"syncfail", Profile{FailSyncOp: 1}},
		{"renamefail", Profile{FailRenameOp: 1}},
	}
	for _, tc := range cases {
		os.WriteFile(path, old, 0o644)
		ffs := NewFaultFS(OS, 9, tc.p)
		err := WriteAtomic(ffs, path, func(w io.Writer) error { _, err := w.Write(newContent); return err })
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: err = %v, want an injected fault", tc.name, err)
		}
		got, _ := os.ReadFile(path)
		if !bytes.Equal(got, old) {
			t.Errorf("%s: previous content destroyed", tc.name)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s: temp file left behind", tc.name)
		}
	}

	// A crash mid-write leaves the previous content visible at path
	// (the torn bytes live only in the temp file).
	os.WriteFile(path, old, 0o644)
	ffs := NewFaultFS(OS, 9, Profile{CrashAtByte: 17})
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("expected crash")
			}
		}()
		WriteAtomic(ffs, path, func(w io.Writer) error { _, err := w.Write(newContent); return err })
	}()
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, old) {
		t.Fatal("crash mid-atomic-write destroyed the previous content")
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("crash@1234, enospc@99,syncfail@2,renamefail@1,shortwrite:0.25,readflip:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{CrashAtByte: 1234, DiskFullAtByte: 99, FailSyncOp: 2, FailRenameOp: 1,
		ShortWriteProb: 0.25, ReadBitFlipProb: 0.5}
	// Compare without the func field.
	p.Crash, want.Crash = nil, nil
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("ParseProfile = %+v, want %+v", p, want)
	}
	for _, bad := range []string{"crash@x", "crash:5", "enospc@-1", "shortwrite:2", "bogus@1", "shortwrite@0.5"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
	if p, err := ParseProfile(""); err != nil || p.active() {
		t.Errorf("empty spec: %+v, %v", p, err)
	}
}

// pipePair returns a connected pair with the client side fault-wrapped.
func pipePair(seed int64, p ConnProfile) (client *Conn, server net.Conn) {
	a, b := net.Pipe()
	return NewConn(a, seed, p), b
}

func TestConnCorruptFlipsOneByte(t *testing.T) {
	client, server := pipePair(1, ConnProfile{Corrupt: 1, MinWriteLen: 16, Once: true})
	defer client.Close()
	defer server.Close()
	frame := bytes.Repeat([]byte{0x11}, 64)
	go client.Write(frame)
	got := make([]byte, 64)
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != frame[i] {
			diff++
			if i < 4 || i >= len(frame)-4 {
				t.Errorf("corruption at %d escaped the payload region", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// Short writes (a heartbeat) pass clean even with Corrupt=1.
	client2, server2 := pipePair(1, ConnProfile{Corrupt: 1, MinWriteLen: 16})
	defer client2.Close()
	defer server2.Close()
	go client2.Write([]byte("beat"))
	hb := make([]byte, 4)
	io.ReadFull(server2, hb)
	if string(hb) != "beat" {
		t.Fatalf("short write corrupted: %q", hb)
	}
}

func TestConnCutTearsAndCloses(t *testing.T) {
	client, server := pipePair(2, ConnProfile{Cut: 1, MinWriteLen: 8})
	defer server.Close()
	frame := bytes.Repeat([]byte{0x22}, 32)
	var n int
	var werr error
	done := make(chan struct{})
	go func() { n, werr = client.Write(frame); close(done) }()
	got := make([]byte, 32)
	rn, _ := io.ReadFull(server, got)
	<-done
	if !errors.Is(werr, net.ErrClosed) {
		t.Fatalf("cut write err = %v", werr)
	}
	if rn != 16 || n != 16 {
		t.Fatalf("cut delivered %d/%d bytes, want 16", rn, n)
	}
}

func TestConnDuplicateAndDrip(t *testing.T) {
	client, server := pipePair(3, ConnProfile{Duplicate: 1, MinWriteLen: 8, Once: true})
	defer client.Close()
	defer server.Close()
	frame := []byte("0123456789abcdef")
	go client.Write(frame)
	got := make([]byte, 2*len(frame))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(frame)], frame) || !bytes.Equal(got[len(frame):], frame) {
		t.Fatalf("duplicate not byte-identical: %q", got)
	}

	dc, ds := pipePair(4, ConnProfile{Drip: 1, DripChunk: 3})
	defer dc.Close()
	defer ds.Close()
	go dc.Write(frame)
	got2 := make([]byte, len(frame))
	if _, err := io.ReadFull(ds, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, frame) {
		t.Fatalf("drip reassembly: %q", got2)
	}
}

func TestConnPartitionSwallowsBothDirections(t *testing.T) {
	client, server := pipePair(5, ConnProfile{PartitionAfterWrites: 1})
	defer client.Close()
	defer server.Close()
	go func() {
		io.Copy(io.Discard, server) // drain the pre-partition write
	}()
	if _, err := client.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	// Post-partition: the write "succeeds" but nothing crosses.
	if n, err := client.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("partitioned write: %d, %v", n, err)
	}
	// Reads block through the partition; a deadline must still fire so
	// the reader can give up.
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	go server.Write([]byte("from-srv"))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("partitioned read delivered data")
	}
}
