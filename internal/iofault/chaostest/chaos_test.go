// Package chaostest is the chaos matrix: every durability-critical
// component (store write, journal append, end-to-end checkpointed
// collection, fsck repair) crossed with every disk-fault class
// (crash-at-byte-offset sampled across the component's full write
// volume, ENOSPC, fsync failure, torn rename). Each cell injects the
// fault through an iofault.FaultFS, then proves the recovery story:
// fsck and resume reproduce the uninterrupted run's store, report and
// journal bytes exactly.
//
// Offsets and probabilistic faults are seeded, so a failing cell
// reproduces from its logged (seed, offset) alone. The whole matrix is
// one `go test ./internal/iofault/chaostest` away; CI runs it as the
// chaos-smoke job.
package chaostest

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"testing"

	"whereru/internal/core"
	"whereru/internal/iofault"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

// crashSamples is how many byte offsets each component's crash class
// samples across its write volume (the acceptance floor is 32).
const crashSamples = 32

// sampleOffsets returns n distinct 1-based byte offsets in [1, total],
// hash-spread and always including both edges. When total <= n every
// offset is taken.
func sampleOffsets(total int64, n int, salt uint64) []int64 {
	if total <= int64(n) {
		out := make([]int64, 0, total)
		for i := int64(1); i <= total; i++ {
			out = append(out, i)
		}
		return out
	}
	seen := map[int64]bool{1: true, total: true}
	out := []int64{1, total}
	for i := 0; len(out) < n; i++ {
		h := fnv.New64a()
		var b [16]byte
		binary.BigEndian.PutUint64(b[:8], salt)
		binary.BigEndian.PutUint64(b[8:], uint64(i))
		h.Write(b[:])
		off := 1 + int64(h.Sum64()%uint64(total))
		if !seen[off] {
			seen[off] = true
			out = append(out, off)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// expectCrash runs fn and asserts it dies of an injected *iofault.Crash
// at exactly the wanted byte offset.
func expectCrash(t *testing.T, wantAt int64, fn func()) {
	t.Helper()
	defer func() {
		c, ok := recover().(*iofault.Crash)
		if !ok {
			t.Fatalf("crash@%d: no injected crash fired", wantAt)
		}
		if c.TotalBytes != wantAt {
			t.Fatalf("crash@%d: crashed at byte %d", wantAt, c.TotalBytes)
		}
	}()
	fn()
	t.Fatalf("crash@%d: returned without crashing", wantAt)
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---------------------------------------------------------------------------
// Component: store write (WriteAtomic of a measurement store)

// chaosStore builds a small deterministic store; sweeps controls how
// much history it holds so "previous" and "new" stores differ.
func chaosStore(sweeps int) *store.Store {
	s := store.New()
	for i := 0; i < sweeps; i++ {
		day := simtime.Day(800 + i*7)
		s.BeginSweep(day)
		for j := 0; j < 10; j++ {
			s.Add(store.Measurement{
				Domain: fmt.Sprintf("dom%02d.ru.", j),
				Day:    day,
				Config: store.Config{
					NSHosts: []string{fmt.Sprintf("ns%d.prov%d.ru.", j%2, (j+i/3)%3)},
				},
			})
		}
	}
	return s
}

func writeStoreAtomic(fsys iofault.FS, path string, s *store.Store) error {
	return iofault.WriteAtomic(fsys, path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// TestChaosStoreWrite crosses the atomic store write with every fault
// class. The guarantee under test: the previous good store survives any
// failure, and a retry on a healed disk produces the uninterrupted
// run's bytes exactly.
func TestChaosStoreWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.wrst")
	prevStore, newStore := chaosStore(3), chaosStore(6)

	if err := writeStoreAtomic(iofault.OS, path, prevStore); err != nil {
		t.Fatal(err)
	}
	prev := mustRead(t, path)
	if err := writeStoreAtomic(iofault.OS, path, newStore); err != nil {
		t.Fatal(err)
	}
	ref := mustRead(t, path)
	if bytes.Equal(prev, ref) {
		t.Fatal("previous and new stores are identical; the test proves nothing")
	}
	total := int64(len(ref))

	// After any fault: prev intact, clean retry == ref, and no temp
	// litter once the retry lands. Error returns clean up their own temp
	// file; a crash cannot (the process is gone), so only the
	// error-shaped classes assert immediate cleanup via crashed=false.
	checkRecovery := func(t *testing.T, label string, crashed bool) {
		t.Helper()
		if got := mustRead(t, path); !bytes.Equal(got, prev) {
			t.Fatalf("%s: previous store damaged", label)
		}
		if !crashed {
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s: temp file left behind", label)
			}
		}
		if err := writeStoreAtomic(iofault.OS, path, newStore); err != nil {
			t.Fatalf("%s: retry: %v", label, err)
		}
		if got := mustRead(t, path); !bytes.Equal(got, ref) {
			t.Fatalf("%s: retried write differs from uninterrupted run", label)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: temp file survived the retry", label)
		}
	}
	reset := func() {
		if err := writeStoreAtomic(iofault.OS, path, prevStore); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("crash", func(t *testing.T) {
		for _, off := range sampleOffsets(total, crashSamples, 0x5701) {
			reset()
			ffs := iofault.NewFaultFS(iofault.OS, 100+off, iofault.Profile{CrashAtByte: off})
			expectCrash(t, off, func() { writeStoreAtomic(ffs, path, newStore) })
			checkRecovery(t, fmt.Sprintf("crash@%d", off), true)
		}
	})
	t.Run("enospc", func(t *testing.T) {
		// total-1: a disk that fills at exactly total bytes fits the
		// whole write and injects nothing.
		for _, off := range sampleOffsets(total-1, 8, 0x5702) {
			reset()
			ffs := iofault.NewFaultFS(iofault.OS, 200+off, iofault.Profile{DiskFullAtByte: off})
			err := writeStoreAtomic(ffs, path, newStore)
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("enospc@%d: err = %v", off, err)
			}
			checkRecovery(t, fmt.Sprintf("enospc@%d", off), false)
		}
	})
	t.Run("syncfail", func(t *testing.T) {
		for _, op := range []int{1, 2} { // file fsync, then directory fsync
			reset()
			ffs := iofault.NewFaultFS(iofault.OS, 300+int64(op), iofault.Profile{FailSyncOp: op})
			err := writeStoreAtomic(ffs, path, newStore)
			if op == 1 {
				// The file fsync fails before the rename: full rollback.
				if !errors.Is(err, iofault.ErrSyncFault) {
					t.Fatalf("syncfail@%d: err = %v", op, err)
				}
				checkRecovery(t, fmt.Sprintf("syncfail@%d", op), false)
				continue
			}
			// The directory fsync fails after the rename: the new bytes are
			// already visible (and complete); only their crash-durability is
			// unproven. The caller sees the error and retries.
			if !errors.Is(err, iofault.ErrSyncFault) {
				t.Fatalf("syncfail@%d: err = %v", op, err)
			}
			if got := mustRead(t, path); !bytes.Equal(got, ref) && !bytes.Equal(got, prev) {
				t.Fatalf("syncfail@%d: path holds neither old nor new store", op)
			}
			if err := writeStoreAtomic(iofault.OS, path, newStore); err != nil {
				t.Fatalf("syncfail@%d retry: %v", op, err)
			}
			if got := mustRead(t, path); !bytes.Equal(got, ref) {
				t.Fatalf("syncfail@%d: retry differs", op)
			}
		}
	})
	t.Run("torn-rename", func(t *testing.T) {
		reset()
		ffs := iofault.NewFaultFS(iofault.OS, 400, iofault.Profile{FailRenameOp: 1})
		if err := writeStoreAtomic(ffs, path, newStore); !errors.Is(err, iofault.ErrRenameFault) {
			t.Fatalf("renamefail: err = %v", err)
		}
		checkRecovery(t, "renamefail", false)
	})
}

// ---------------------------------------------------------------------------
// Component: journal append

func chaosSweeps(n int) []store.JournalSweep {
	out := make([]store.JournalSweep, 0, n)
	for i := 0; i < n; i++ {
		rec := store.JournalSweep{
			Day:   simtime.Day(900 + i*7),
			Stats: store.JournalStats{Domains: 4, Retries: i % 2},
		}
		if i == 2 {
			rec.Missing = true
			rec.Stats = store.JournalStats{}
			out = append(out, rec)
			continue
		}
		for j := 0; j < 4; j++ {
			rec.Measurements = append(rec.Measurements, store.Measurement{
				Domain: fmt.Sprintf("dom%02d.ru.", j),
				Day:    rec.Day,
				Config: store.Config{NSHosts: []string{fmt.Sprintf("ns%d.ru.", (i+j)%3)}},
			})
		}
		out = append(out, rec)
	}
	return out
}

// appendAll journals recs[from:] onto an open journal.
func appendAll(j *store.Journal, recs []store.JournalSweep, from int) error {
	for _, rec := range recs[from:] {
		if err := j.AppendSweep(rec); err != nil {
			return err
		}
	}
	return nil
}

// buildJournal writes the full journal through fsys, returning the
// first error; the file is closed either way.
func buildJournal(fsys iofault.FS, path string, recs []store.JournalSweep) error {
	j, err := store.CreateJournalFS(fsys, path)
	if err != nil {
		return err
	}
	defer j.Close()
	return appendAll(j, recs, 0)
}

// resumeJournal repairs the journal at path (fsck), reopens it, and
// appends whichever of recs the replay shows missing — the journal-level
// shape of crash recovery.
func resumeJournal(t *testing.T, path string, recs []store.JournalSweep) {
	t.Helper()
	if _, err := store.RepairJournal(path); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	j, replay, err := store.OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if replay.Torn() {
		t.Fatalf("journal still torn after repair")
	}
	if err := appendAll(j, recs, len(replay.Sweeps)); err != nil {
		t.Fatalf("resume append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosJournalAppend crosses journal creation and appending with
// every fault class: whatever byte the disk dies at, fsck plus a
// resumed append sequence reproduces the uninterrupted journal exactly.
func TestChaosJournalAppend(t *testing.T) {
	dir := t.TempDir()
	recs := chaosSweeps(6)

	refPath := filepath.Join(dir, "ref.wrjl")
	meter := iofault.NewFaultFS(iofault.OS, 1, iofault.Profile{})
	if err := buildJournal(meter, refPath, recs); err != nil {
		t.Fatal(err)
	}
	ref := mustRead(t, refPath)
	total := meter.Stats().BytesWritten
	if total != int64(len(ref)) {
		t.Fatalf("metered %d bytes, file is %d", total, len(ref))
	}

	path := filepath.Join(dir, "j.wrjl")
	t.Run("crash", func(t *testing.T) {
		for _, off := range sampleOffsets(total, crashSamples, 0x1A01) {
			os.Remove(path)
			ffs := iofault.NewFaultFS(iofault.OS, 500+off, iofault.Profile{CrashAtByte: off})
			expectCrash(t, off, func() { buildJournal(ffs, path, recs) })
			resumeJournal(t, path, recs)
			if got := mustRead(t, path); !bytes.Equal(got, ref) {
				t.Fatalf("crash@%d: resumed journal differs from uninterrupted run", off)
			}
		}
	})
	t.Run("enospc", func(t *testing.T) {
		for _, off := range sampleOffsets(total-1, 8, 0x1A02) {
			os.Remove(path)
			ffs := iofault.NewFaultFS(iofault.OS, 600+off, iofault.Profile{DiskFullAtByte: off})
			err := buildJournal(ffs, path, recs)
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("enospc@%d: err = %v", off, err)
			}
			// The rolled-back journal must already be clean — fsck finds
			// nothing to do — and resumable.
			if replay, err := store.VerifyJournal(path); err == nil && replay.Torn() {
				t.Fatalf("enospc@%d: rolled-back journal is torn", off)
			}
			resumeJournal(t, path, recs)
			if got := mustRead(t, path); !bytes.Equal(got, ref) {
				t.Fatalf("enospc@%d: resumed journal differs", off)
			}
		}
	})
	t.Run("syncfail", func(t *testing.T) {
		// Op 1 is the header sync; op k>1 is the (k-1)th append's sync.
		for op := 1; op <= len(recs)+1; op++ {
			os.Remove(path)
			ffs := iofault.NewFaultFS(iofault.OS, 700+int64(op), iofault.Profile{FailSyncOp: op})
			err := buildJournal(ffs, path, recs)
			if !errors.Is(err, iofault.ErrSyncFault) {
				t.Fatalf("syncfail@%d: err = %v", op, err)
			}
			resumeJournal(t, path, recs)
			if got := mustRead(t, path); !bytes.Equal(got, ref) {
				t.Fatalf("syncfail@%d: resumed journal differs", op)
			}
		}
	})
	t.Run("torn-rename", func(t *testing.T) {
		// The journal protocol is append-only — it never renames. A
		// rename-fault profile must therefore be a no-op against it: the
		// build completes, bytes identical, nothing injected.
		os.Remove(path)
		ffs := iofault.NewFaultFS(iofault.OS, 800, iofault.Profile{FailRenameOp: 1})
		if err := buildJournal(ffs, path, recs); err != nil {
			t.Fatalf("renamefail: %v", err)
		}
		if got := mustRead(t, path); !bytes.Equal(got, ref) {
			t.Fatal("renamefail: journal differs")
		}
		if ffs.Stats().Injected != 0 {
			t.Fatal("renamefail: journal performed a rename?")
		}
	})
}

// ---------------------------------------------------------------------------
// Component: end-to-end checkpointed collection

// chaosOpts is the end-to-end configuration: a handful of dense sweeps
// over one month at tiny scale — cheap enough to re-collect once per
// crash offset while exercising the full pipeline.
func chaosOpts() core.Options {
	return core.Options{
		World:      world.Config{Seed: 5, Scale: 20000, RFShare: 0.1},
		DenseStep:  7,
		CollectMX:  true,
		StudyStart: simtime.Date(2022, 2, 1),
		StudyEnd:   simtime.Date(2022, 3, 1),
	}
}

// runCheckpointed runs one checkpointed study through fsys: collect,
// render, save the store atomically. Returns the rendered report and
// the on-disk store bytes.
func runCheckpointed(t *testing.T, opts core.Options, fsys iofault.FS, journalPath, storePath string) ([]byte, []byte) {
	t.Helper()
	opts.CheckpointPath = journalPath
	opts.FS = fsys
	s, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	if err := s.RenderAll(&report); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveStoreFile(storePath); err != nil {
		t.Fatal(err)
	}
	return report.Bytes(), mustRead(t, storePath)
}

// TestChaosCheckpoint is the end-to-end cell: a whole study whose disk
// dies at sampled byte offsets (covering both the checkpoint journal
// and the atomic store save), then an fsck + resumed study that must
// reproduce the uninterrupted run's report, store and journal bytes
// exactly.
func TestChaosCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end chaos matrix skipped in -short")
	}
	opts := chaosOpts()
	dir := t.TempDir()
	refJournal, refStore := filepath.Join(dir, "ref.wrjl"), filepath.Join(dir, "ref.wrst")

	meter := iofault.NewFaultFS(iofault.OS, 1, iofault.Profile{})
	wantReport, wantStore := runCheckpointed(t, opts, meter, refJournal, refStore)
	total := meter.Stats().BytesWritten
	wantJournal := mustRead(t, refJournal)
	if total <= int64(len(wantJournal)) {
		t.Fatalf("metered %d bytes, journal alone is %d — store save not metered?", total, len(wantJournal))
	}

	// resumeAndCompare fscks both files, resumes the study on a healed
	// disk, and demands byte-identical outputs.
	resumeAndCompare := func(t *testing.T, label, journalPath, storePath string) {
		t.Helper()
		if _, err := store.RepairJournal(journalPath); err != nil {
			t.Fatalf("%s: fsck: %v", label, err)
		}
		ropts := opts
		ropts.Resume = true
		report, storeBytes := runCheckpointed(t, ropts, iofault.OS, journalPath, storePath)
		if !bytes.Equal(report, wantReport) {
			t.Errorf("%s: resumed report differs from uninterrupted run", label)
		}
		if !bytes.Equal(storeBytes, wantStore) {
			t.Errorf("%s: resumed store differs from uninterrupted run", label)
		}
		if got := mustRead(t, journalPath); !bytes.Equal(got, wantJournal) {
			t.Errorf("%s: resumed journal differs from uninterrupted run", label)
		}
	}

	// crashRun runs the study expecting either an injected crash (panic)
	// or an injected error partway; both model a dying disk.
	crashRun := func(opts core.Options, fsys iofault.FS, journalPath, storePath string) (err error) {
		defer func() {
			if r := recover(); r != nil {
				c, ok := r.(*iofault.Crash)
				if !ok {
					panic(r)
				}
				err = c
			}
		}()
		opts.CheckpointPath = journalPath
		opts.FS = fsys
		s, nerr := core.New(opts)
		if nerr != nil {
			return nerr
		}
		if cerr := s.Collect(context.Background()); cerr != nil {
			return cerr
		}
		return s.SaveStoreFile(storePath)
	}

	t.Run("crash", func(t *testing.T) {
		n := crashSamples
		for i, off := range sampleOffsets(total, n, 0xE2E1) {
			journalPath := filepath.Join(dir, fmt.Sprintf("c%02d.wrjl", i))
			storePath := filepath.Join(dir, fmt.Sprintf("c%02d.wrst", i))
			ffs := iofault.NewFaultFS(iofault.OS, 900+off, iofault.Profile{CrashAtByte: off})
			err := crashRun(opts, ffs, journalPath, storePath)
			var crash *iofault.Crash
			if !errors.As(err, &crash) {
				t.Fatalf("crash@%d: run ended with %v, want an injected crash", off, err)
			}
			resumeAndCompare(t, fmt.Sprintf("crash@%d", off), journalPath, storePath)
		}
	})
	t.Run("enospc", func(t *testing.T) {
		for i, off := range sampleOffsets(total-1, 4, 0xE2E2) {
			journalPath := filepath.Join(dir, fmt.Sprintf("e%02d.wrjl", i))
			storePath := filepath.Join(dir, fmt.Sprintf("e%02d.wrst", i))
			ffs := iofault.NewFaultFS(iofault.OS, 1000+off, iofault.Profile{DiskFullAtByte: off})
			err := crashRun(opts, ffs, journalPath, storePath)
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("enospc@%d: run ended with %v", off, err)
			}
			resumeAndCompare(t, fmt.Sprintf("enospc@%d", off), journalPath, storePath)
		}
	})
	t.Run("syncfail", func(t *testing.T) {
		for _, op := range []int{1, 2, 4} {
			journalPath := filepath.Join(dir, fmt.Sprintf("s%02d.wrjl", op))
			storePath := filepath.Join(dir, fmt.Sprintf("s%02d.wrst", op))
			ffs := iofault.NewFaultFS(iofault.OS, 1100+int64(op), iofault.Profile{FailSyncOp: op})
			err := crashRun(opts, ffs, journalPath, storePath)
			if !errors.Is(err, iofault.ErrSyncFault) {
				t.Fatalf("syncfail@%d: run ended with %v", op, err)
			}
			resumeAndCompare(t, fmt.Sprintf("syncfail@%d", op), journalPath, storePath)
		}
	})
	t.Run("torn-rename", func(t *testing.T) {
		// The only rename in the whole run is the store save's atomic
		// replace at the very end.
		journalPath := filepath.Join(dir, "r.wrjl")
		storePath := filepath.Join(dir, "r.wrst")
		ffs := iofault.NewFaultFS(iofault.OS, 1200, iofault.Profile{FailRenameOp: 1})
		err := crashRun(opts, ffs, journalPath, storePath)
		if !errors.Is(err, iofault.ErrRenameFault) {
			t.Fatalf("renamefail: run ended with %v", err)
		}
		if _, err := os.Stat(storePath); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("renamefail: torn store save left %s behind", storePath)
		}
		resumeAndCompare(t, "renamefail", journalPath, storePath)
	})
}

// ---------------------------------------------------------------------------
// Component: fsck repair of a damaged store

// TestChaosRepair damages a store, then crosses the repair's atomic
// rewrite with every fault class: a failed or crashed repair must leave
// the damaged-but-recoverable original untouched, and a retry on a
// healed disk must produce the reference repair bytes exactly.
func TestChaosRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "victim.wrst")

	if err := writeStoreAtomic(iofault.OS, path, chaosStore(6)); err != nil {
		t.Fatal(err)
	}
	clean := mustRead(t, path)
	damaged := append([]byte(nil), clean...)
	damaged[len(damaged)*2/3] ^= 0x08

	// repairThrough mirrors rustore's fsck -repair: tolerant read, then
	// an atomic rewrite of the recovered contents through fsys.
	repairThrough := func(fsys iofault.FS) error {
		st, rec, err := store.ReadRecover(bytes.NewReader(mustRead(t, path)))
		if err != nil {
			return err
		}
		if !rec.Damaged {
			return fmt.Errorf("victim not damaged")
		}
		return iofault.WriteAtomic(fsys, path, func(w io.Writer) error {
			_, err := st.WriteTo(w)
			return err
		})
	}
	reset := func() {
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Reference repair on a healthy disk.
	reset()
	if err := repairThrough(iofault.OS); err != nil {
		t.Fatal(err)
	}
	ref := mustRead(t, path)
	if _, err := store.Read(bytes.NewReader(ref)); err != nil {
		t.Fatalf("reference repair is not strictly readable: %v", err)
	}
	total := int64(len(ref))

	check := func(t *testing.T, label string) {
		t.Helper()
		if got := mustRead(t, path); !bytes.Equal(got, damaged) {
			t.Fatalf("%s: failed repair altered the original", label)
		}
		if err := repairThrough(iofault.OS); err != nil {
			t.Fatalf("%s: retry: %v", label, err)
		}
		if got := mustRead(t, path); !bytes.Equal(got, ref) {
			t.Fatalf("%s: retried repair differs from reference", label)
		}
	}

	t.Run("crash", func(t *testing.T) {
		for _, off := range sampleOffsets(total, crashSamples, 0xF1C1) {
			reset()
			ffs := iofault.NewFaultFS(iofault.OS, 1300+off, iofault.Profile{CrashAtByte: off})
			expectCrash(t, off, func() { repairThrough(ffs) })
			check(t, fmt.Sprintf("crash@%d", off))
		}
	})
	t.Run("enospc", func(t *testing.T) {
		for _, off := range sampleOffsets(total-1, 8, 0xF1C2) {
			reset()
			ffs := iofault.NewFaultFS(iofault.OS, 1400+off, iofault.Profile{DiskFullAtByte: off})
			if err := repairThrough(ffs); !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("enospc@%d: err = %v", off, err)
			}
			check(t, fmt.Sprintf("enospc@%d", off))
		}
	})
	t.Run("syncfail", func(t *testing.T) {
		reset()
		ffs := iofault.NewFaultFS(iofault.OS, 1500, iofault.Profile{FailSyncOp: 1})
		if err := repairThrough(ffs); !errors.Is(err, iofault.ErrSyncFault) {
			t.Fatalf("syncfail: err = %v", err)
		}
		check(t, "syncfail")
	})
	t.Run("torn-rename", func(t *testing.T) {
		reset()
		ffs := iofault.NewFaultFS(iofault.OS, 1600, iofault.Profile{FailRenameOp: 1})
		if err := repairThrough(ffs); !errors.Is(err, iofault.ErrRenameFault) {
			t.Fatalf("renamefail: err = %v", err)
		}
		check(t, "renamefail")
	})
}
