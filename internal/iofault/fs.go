// Package iofault is the durability counterpart of the DNS layer's
// fault-injection transport (dns.FaultTransport): a filesystem
// abstraction whose fault wrapper subjects every syscall-shaped
// operation — writes, fsyncs, renames, reads — to deterministic,
// seed-driven failures. Collection survives the real world only if
// crashes mid-write, full disks, lying fsyncs and bit rot are exercised
// the way lossy links already are, so the store's WriteTo callers, the
// sweep journal, checkpoint writes and `rustore fsck -repair` all route
// their file I/O through an FS, and the chaos matrix
// (internal/iofault/chaostest) swaps the OS passthrough for a FaultFS.
//
// Like the network layer, every injected failure is replayable: fault
// decisions are pure FNV-1a hashes of (seed, op-index), never draws
// from a sequential RNG, so a fixed seed reproduces the same short
// write or flipped bit run after run, and a crash observed once can be
// replayed at exactly the same byte offset forever.
package iofault

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the slice of *os.File the durability paths need. *os.File
// satisfies it directly; FaultFS wraps one with fault injection.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
	Name() string
}

// FS abstracts the filesystem operations durability-critical code
// performs. OS is the passthrough; NewFaultFS wraps any FS with a
// deterministic fault profile.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// SyncDir fsyncs the directory at dir, making a rename inside it
	// durable (the final step of an atomic replace).
	SyncDir(dir string) error
}

// OS is the real filesystem: every operation delegates to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Create opens name for writing, truncating it — os.Create through fsys.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open opens name read-only — os.Open through fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// WriteAtomic durably replaces path with whatever write produces:
// write a temp file in the same directory, fsync it, close, rename over
// path, fsync the directory. A crash at any byte of the sequence leaves
// either the previous content of path or the new one — never a torn
// mixture, and never neither. On error the temp file is removed and
// path is untouched.
func WriteAtomic(fsys FS, path string, write func(w io.Writer) error) error {
	if fsys == nil {
		fsys = OS
	}
	tmp := path + ".tmp"
	f, err := Create(fsys, tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	// The rename must never expose bytes that are not yet on stable
	// storage: fsync the file before it becomes visible under path.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// And the rename itself must survive power loss: fsync the directory.
	return fsys.SyncDir(filepath.Dir(path))
}
