package iofault

import (
	"net"
	"sync"
	"time"
)

// ConnProfile configures a fault-injecting net.Conn wrapper. The zero
// value injects nothing. Probabilities roll a pure hash of (seed,
// write-index) per write, so a fixed seed degrades the same frame the
// same way on every run — the transport-level sibling of Profile.
type ConnProfile struct {
	// Corrupt is the probability a qualifying write has one
	// seed-chosen payload byte bit-flipped (a checksummed protocol must
	// reject the frame).
	Corrupt float64
	// Cut is the probability a qualifying write is torn: half the bytes
	// hit the wire, then the connection closes.
	Cut float64
	// Duplicate is the probability a qualifying write is sent twice —
	// the same frame arriving again, which an at-most-once receiver
	// must drop.
	Duplicate float64
	// Drip is the probability a qualifying write is delivered in
	// DripChunk-byte pieces with DripDelay between them — a slow,
	// fragmenting path that length-framed readers must reassemble.
	Drip float64
	// MinWriteLen exempts writes shorter than this (handshakes,
	// heartbeats) from Corrupt/Cut/Duplicate/Drip.
	MinWriteLen int
	// Once limits the connection to a single injected fault; later
	// writes pass through clean.
	Once bool
	// PartitionAfterWrites > 0 partitions the link after that many
	// writes: subsequent writes are silently swallowed and reads never
	// deliver — the peer sees pure silence, as across a netsplit.
	PartitionAfterWrites int
	// DripChunk is the fragment size for Drip (default 1 byte).
	DripChunk int
	// DripDelay is slept between Drip fragments (default none).
	DripDelay time.Duration
}

// Conn wraps a net.Conn with deterministic transport faults. It was
// born as the grid tests' seeded lossy conn; the grid's framing and
// lease machinery are exercised against it, and any framed protocol
// can be.
type Conn struct {
	net.Conn
	seed uint64
	prof ConnProfile

	mu          sync.Mutex
	writes      uint64
	fired       bool
	partitioned bool
}

// Conn-side hash salts.
const (
	saltConnCorrupt = 0x9E3779B97F4A7C15
	saltConnCut     = 0xC2B2AE3D27D4EB4F
	saltConnDup     = 0x165667B19E3779F9
	saltConnDrip    = 0x27D4EB2F165667C5
	saltConnPos     = 0x2545F4914F6CDD1D
)

// NewConn wraps inner with the profile's faults.
func NewConn(inner net.Conn, seed int64, p ConnProfile) *Conn {
	if p.DripChunk <= 0 {
		p.DripChunk = 1
	}
	return &Conn{Conn: inner, seed: uint64(seed), prof: p}
}

func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	op := c.writes
	c.writes++
	if c.prof.PartitionAfterWrites > 0 && c.writes > uint64(c.prof.PartitionAfterWrites) {
		c.partitioned = true
	}
	if c.partitioned {
		c.mu.Unlock()
		// Swallowed whole: the sender believes it sent, nothing arrives.
		return len(b), nil
	}
	mode := ""
	if len(b) >= c.prof.MinWriteLen && !(c.prof.Once && c.fired) {
		switch {
		case c.prof.Cut > 0 && roll(c.seed, op, saltConnCut) < c.prof.Cut:
			mode = "cut"
		case c.prof.Corrupt > 0 && roll(c.seed, op, saltConnCorrupt) < c.prof.Corrupt:
			mode = "corrupt"
		case c.prof.Duplicate > 0 && roll(c.seed, op, saltConnDup) < c.prof.Duplicate:
			mode = "dup"
		case c.prof.Drip > 0 && roll(c.seed, op, saltConnDrip) < c.prof.Drip:
			mode = "drip"
		}
		if mode != "" {
			c.fired = true
		}
	}
	c.mu.Unlock()

	switch mode {
	case "cut":
		// Tear the frame: half the bytes hit the wire, the link dies.
		c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return len(b) / 2, net.ErrClosed
	case "corrupt":
		// Flip one bit of a seed-chosen byte past the length prefix so
		// the checksum no longer matches.
		d := make([]byte, len(b))
		copy(d, b)
		pos := int(hash64(c.seed, op, saltConnPos) % uint64(len(d)))
		if len(d) > 12 {
			pos = 4 + int(hash64(c.seed, op, saltConnPos)%uint64(len(d)-8))
		}
		d[pos] ^= 0x40
		return c.Conn.Write(d)
	case "dup":
		n, err := c.Conn.Write(b)
		if err != nil {
			return n, err
		}
		if _, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		return n, nil
	case "drip":
		for off := 0; off < len(b); off += c.prof.DripChunk {
			end := off + c.prof.DripChunk
			if end > len(b) {
				end = len(b)
			}
			if n, err := c.Conn.Write(b[off:end]); err != nil {
				return off + n, err
			}
			if c.prof.DripDelay > 0 {
				time.Sleep(c.prof.DripDelay)
			}
		}
		return len(b), nil
	default:
		return c.Conn.Write(b)
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	for {
		n, err := c.Conn.Read(b)
		c.mu.Lock()
		part := c.partitioned
		c.mu.Unlock()
		if !part {
			return n, err
		}
		// Partitioned: data from the peer is swallowed too. Errors
		// (close, deadline) still surface so the reader can die.
		if err != nil {
			return 0, err
		}
	}
}
