package pki

import (
	"reflect"
	"testing"
	"testing/quick"

	"whereru/internal/simtime"
)

func TestIssueBasics(t *testing.T) {
	ca := NewCA(1, LetsEncrypt, []string{"R3", "E1"}, 90)
	day := simtime.MustParse("2022-01-10")
	c, err := ca.Issue(day, "example.ru", "www.example.ru")
	if err != nil {
		t.Fatal(err)
	}
	if c.IssuerOrg != LetsEncrypt || c.SubjectCN != "example.ru." {
		t.Fatalf("cert fields: %+v", c)
	}
	if c.NotBefore != day || c.NotAfter != day.Add(90) {
		t.Fatalf("validity: %v..%v", c.NotBefore, c.NotAfter)
	}
	if !c.Logged {
		t.Error("LE cert not logged")
	}
	if !c.ValidOn(day) || !c.ValidOn(day.Add(90)) || c.ValidOn(day.Add(91)) || c.ValidOn(day-1) {
		t.Error("ValidOn window wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "example.ru." {
		t.Fatalf("Names = %v", names)
	}
	if _, err := ca.Issue(day); err == nil {
		t.Error("issue with no names accepted")
	}
	if ca.Issued() != 1 {
		t.Errorf("Issued = %d", ca.Issued())
	}
}

func TestSerialsUniqueAcrossCAs(t *testing.T) {
	ca1 := NewCA(1, "A", nil, 90)
	ca2 := NewCA(2, "B", nil, 90)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		c1, _ := ca1.Issue(0, "x.ru")
		c2, _ := ca2.Issue(0, "x.ru")
		if seen[c1.Serial] || seen[c2.Serial] || c1.Serial == c2.Serial {
			t.Fatal("serial collision")
		}
		seen[c1.Serial] = true
		seen[c2.Serial] = true
	}
}

func TestIssuingCNRotation(t *testing.T) {
	ca := NewCA(2, DigiCert, []string{"CN-A", "CN-B"}, 365)
	c1, _ := ca.Issue(0, "a.ru")
	c2, _ := ca.Issue(0, "b.ru")
	if c1.IssuerCN == c2.IssuerCN {
		t.Error("issuing CNs did not rotate")
	}
}

func TestMatchesRussianTLD(t *testing.T) {
	cases := []struct {
		names []string
		want  bool
	}{
		{[]string{"example.ru"}, true},
		{[]string{"example.com", "mail.example.ru"}, true},
		{[]string{"пример.рф"}, true}, // normalized to xn--p1ai
		{[]string{"example.com"}, false},
		{[]string{"ru.example.com"}, false},
		{[]string{"*.shop.ru"}, true},
	}
	ca := NewCA(3, "T", nil, 90)
	for _, cse := range cases {
		c, err := ca.Issue(0, cse.names...)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.MatchesRussianTLD(); got != cse.want {
			t.Errorf("MatchesRussianTLD(%v) = %v, want %v (names=%v)", cse.names, got, cse.want, c.Names())
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	ca := NewCA(4, GlobalSign, []string{"GCC R3"}, 365)
	c, _ := ca.Issue(simtime.MustParse("2022-03-01"), "bank.ru", "www.bank.ru", "пример.рф")
	blob := c.Marshal()
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, back) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", c, back)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(serial uint64, cn string, san string, nb, span int16, logged bool) bool {
		c := &Certificate{
			Serial:    serial,
			IssuerOrg: "Org",
			IssuerCN:  "CN",
			RootOrg:   "Root",
			SubjectCN: cn,
			SANs:      []string{san},
			NotBefore: simtime.Day(nb),
			NotAfter:  simtime.Day(nb) + simtime.Day(span),
			Logged:    logged,
		}
		back, err := Unmarshal(c.Marshal())
		return err == nil && reflect.DeepEqual(c, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalJunk(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2}, make([]byte, 9), make([]byte, 20)} {
		if _, err := Unmarshal(b); err == nil {
			// A 20-byte zero blob may parse as all-empty cert; ensure no panic at least.
			_ = err
		}
	}
}

func TestCRLAndOCSP(t *testing.T) {
	crl := NewCRL(DigiCert)
	day := simtime.MustParse("2022-02-25")
	crl.Track(100)
	if got := crl.Status(100, day); got != OCSPGood {
		t.Fatalf("status before revocation = %v", got)
	}
	if got := crl.Status(999, day); got != OCSPUnknown {
		t.Fatalf("unknown serial = %v", got)
	}
	crl.Revoke(100, day, ReasonCessation)
	if got := crl.Status(100, day-1); got != OCSPGood {
		t.Fatalf("status before revocation day = %v", got)
	}
	if got := crl.Status(100, day); got != OCSPRevoked {
		t.Fatalf("status on revocation day = %v", got)
	}
	// Double revoke keeps earliest date.
	crl.Revoke(100, day.Add(10), ReasonSuperseded)
	revs := crl.Revocations(simtime.StudyEnd)
	if len(revs) != 1 || revs[0].Day != day || revs[0].Reason != ReasonCessation {
		t.Fatalf("Revocations = %+v", revs)
	}
	if crl.Len() != 1 {
		t.Fatalf("Len = %d", crl.Len())
	}
	// Earlier re-revoke wins.
	crl.Revoke(100, day.Add(-5), ReasonUnspecified)
	if revs := crl.Revocations(simtime.StudyEnd); revs[0].Day != day.Add(-5) {
		t.Fatalf("earlier revocation did not win: %+v", revs)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	ca := NewCA(1, LetsEncrypt, nil, 90)
	ca2 := NewCA(2, Sectigo, nil, 365)
	var serials []uint64
	for i := 0; i < 5; i++ {
		c, _ := ca.Issue(0, "le.ru")
		if err := s.Add(c); err != nil {
			t.Fatal(err)
		}
		serials = append(serials, c.Serial)
	}
	c2, _ := ca2.Issue(0, "sec.ru")
	if err := s.Add(c2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(c2); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got, ok := s.Get(serials[0]); !ok || got.IssuerOrg != LetsEncrypt {
		t.Fatal("Get failed")
	}
	if _, ok := s.Get(424242); ok {
		t.Fatal("Get of unknown serial succeeded")
	}
	issuers := s.Issuers()
	if len(issuers) != 2 || issuers[0] != LetsEncrypt {
		t.Fatalf("Issuers = %v", issuers)
	}
	if got := s.ByIssuer(LetsEncrypt); len(got) != 5 {
		t.Fatalf("ByIssuer = %d", len(got))
	}
	if got := s.Select(func(c *Certificate) bool { return c.IssuerOrg == Sectigo }); len(got) != 1 {
		t.Fatalf("Select = %d", len(got))
	}
	// Revocation through the store.
	day := simtime.MustParse("2022-03-01")
	if err := s.Revoke(serials[0], day, ReasonCessation); err != nil {
		t.Fatal(err)
	}
	if err := s.Revoke(31337, day, ReasonCessation); err == nil {
		t.Fatal("revoking unknown serial succeeded")
	}
	if got := s.Status(serials[0], day); got != OCSPRevoked {
		t.Fatalf("Status = %v", got)
	}
	if got := s.Status(serials[1], day); got != OCSPGood {
		t.Fatalf("Status = %v", got)
	}
	if got := s.Status(31337, day); got != OCSPUnknown {
		t.Fatalf("Status unknown = %v", got)
	}
	if got := s.All(); len(got) != 6 {
		t.Fatalf("All = %d", len(got))
	}
}

func TestStandardCatalog(t *testing.T) {
	cas := StandardCatalog()
	if len(cas) != 11 {
		t.Fatalf("catalog size = %d, want 11 (top-10 + Russian CA)", len(cas))
	}
	rtr := cas[RussianTrustedRootCA]
	if rtr == nil {
		t.Fatal("Russian CA missing")
	}
	if rtr.LogsToCT || rtr.BrowserTrusted {
		t.Error("Russian CA must not log to CT nor be browser-trusted")
	}
	le := cas[LetsEncrypt]
	if le == nil || !le.LogsToCT || le.DefaultValidityDays != 90 {
		t.Errorf("Let's Encrypt misconfigured: %+v", le)
	}
	c, _ := rtr.Issue(simtime.MustParse("2022-03-10"), "vtb.ru")
	if c.Logged {
		t.Error("Russian CA issued a logged certificate")
	}
	// Unique ids → unique serial spaces.
	seen := make(map[uint64]bool)
	for _, ca := range cas {
		c, _ := ca.Issue(0, "x.ru")
		if seen[c.Serial] {
			t.Fatal("serial collision across catalog")
		}
		seen[c.Serial] = true
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.RU", "example.ru."},
		{"пример.рф", "xn--e1afmkfd.xn--p1ai."},
		{"*.shop.ru", "*.shop.ru."},
		{"already.ru.", "already.ru."},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReasonAndStatusStrings(t *testing.T) {
	if ReasonCessation.String() != "cessationOfOperation" ||
		ReasonSuperseded.String() != "superseded" ||
		ReasonUnspecified.String() != "unspecified" {
		t.Error("reason strings wrong")
	}
	if OCSPGood.String() != "good" || OCSPRevoked.String() != "revoked" || OCSPUnknown.String() != "unknown" {
		t.Error("status strings wrong")
	}
}

func BenchmarkIssue(b *testing.B) {
	ca := NewCA(1, LetsEncrypt, []string{"R3"}, 90)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Issue(0, "bench.ru", "www.bench.ru"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	ca := NewCA(1, LetsEncrypt, []string{"R3"}, 90)
	c, _ := ca.Issue(0, "bench.ru", "www.bench.ru")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Marshal()
	}
}
