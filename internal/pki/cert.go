// Package pki models the WebPKI pieces of the paper's §4: certificates
// with subject names and validity windows, certificate authorities with
// per-period issuance behavior, and revocation state (CRL + OCSP). It is a
// behavioral model, not a cryptographic one: certificates carry the fields
// the paper's analysis reads (issuer organization, names, validity,
// chain root, CT-logging behavior), and integrity in the CT log is
// provided by real SHA-256 Merkle hashing over a deterministic
// serialization of these fields (internal/ct).
package pki

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"whereru/internal/dns"
	"whereru/internal/idn"
	"whereru/internal/simtime"
)

// Certificate is one issued leaf certificate.
type Certificate struct {
	// Serial is unique across the simulation (high bits identify the CA).
	Serial uint64
	// IssuerOrg is the Issuer DN organization — the field the paper
	// extracts to identify the responsible CA (§4.1).
	IssuerOrg string
	// IssuerCN is the issuing intermediate's common name (CAs issue under
	// multiple CNs, e.g. DigiCert's RapidSSL and GeoTrust).
	IssuerCN string
	// RootOrg is the organization of the chain's root. For cross-signed
	// or private chains this differs from IssuerOrg's house root.
	RootOrg string
	// SubjectCN is the certificate's common name (canonical form).
	SubjectCN string
	// SANs are the subject alternative names (canonical form).
	SANs []string
	// NotBefore/NotAfter bound the validity window (inclusive days).
	NotBefore simtime.Day
	NotAfter  simtime.Day
	// Logged records whether the CA submitted the certificate to CT —
	// the Russian Trusted Root CA does not log (§4.3).
	Logged bool
}

// Names returns the deduplicated set of names the certificate secures
// (CN plus SANs), sorted.
func (c *Certificate) Names() []string {
	seen := make(map[string]struct{}, 1+len(c.SANs))
	if c.SubjectCN != "" {
		seen[c.SubjectCN] = struct{}{}
	}
	for _, n := range c.SANs {
		seen[n] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MatchesRussianTLD reports whether the CN or any SAN is under .ru or .рф
// — the paper's criterion for a certificate "matching" (footnote 6).
func (c *Certificate) MatchesRussianTLD() bool {
	for _, n := range c.Names() {
		tld := dns.TLD(dns.Canonical(n))
		if tld == "ru" || tld == idn.RFTLDASCII {
			return true
		}
	}
	return false
}

// ValidOn reports whether day falls inside the validity window.
func (c *Certificate) ValidOn(day simtime.Day) bool {
	return c.NotBefore <= day && day <= c.NotAfter
}

// String renders a compact one-line description.
func (c *Certificate) String() string {
	return fmt.Sprintf("serial=%d cn=%s issuer=%q (%s) validity=%s..%s",
		c.Serial, c.SubjectCN, c.IssuerOrg, c.IssuerCN, c.NotBefore, c.NotAfter)
}

// Marshal serializes the certificate deterministically; this is the byte
// string hashed into CT log leaves. The format is length-prefixed fields,
// not ASN.1 — stable, compact and sufficient for Merkle integrity.
func (c *Certificate) Marshal() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint64(b, c.Serial)
	appendStr := func(s string) {
		b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	appendStr(c.IssuerOrg)
	appendStr(c.IssuerCN)
	appendStr(c.RootOrg)
	appendStr(c.SubjectCN)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.SANs)))
	for _, s := range c.SANs {
		appendStr(s)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(int32(c.NotBefore)))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(c.NotAfter)))
	if c.Logged {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

// Unmarshal parses the Marshal format.
func Unmarshal(b []byte) (*Certificate, error) {
	c := &Certificate{}
	if len(b) < 8 {
		return nil, fmt.Errorf("pki: short certificate blob")
	}
	c.Serial = binary.BigEndian.Uint64(b)
	b = b[8:]
	readStr := func() (string, error) {
		if len(b) < 2 {
			return "", fmt.Errorf("pki: truncated string")
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return "", fmt.Errorf("pki: truncated string body")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	var err error
	if c.IssuerOrg, err = readStr(); err != nil {
		return nil, err
	}
	if c.IssuerCN, err = readStr(); err != nil {
		return nil, err
	}
	if c.RootOrg, err = readStr(); err != nil {
		return nil, err
	}
	if c.SubjectCN, err = readStr(); err != nil {
		return nil, err
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("pki: truncated SAN count")
	}
	nSAN := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	for i := 0; i < nSAN; i++ {
		s, err := readStr()
		if err != nil {
			return nil, err
		}
		c.SANs = append(c.SANs, s)
	}
	if len(b) < 9 {
		return nil, fmt.Errorf("pki: truncated validity")
	}
	c.NotBefore = simtime.Day(int32(binary.BigEndian.Uint32(b)))
	c.NotAfter = simtime.Day(int32(binary.BigEndian.Uint32(b[4:])))
	c.Logged = b[8] == 1
	return c, nil
}

// NormalizeName canonicalizes a certificate subject name (trailing dot,
// lowercase, IDN to ACE). Wildcard prefixes are preserved.
func NormalizeName(name string) string {
	wildcard := false
	if strings.HasPrefix(name, "*.") {
		wildcard = true
		name = name[2:]
	}
	ascii, err := idn.ToASCII(dns.Canonical(name))
	if err != nil {
		ascii = dns.Canonical(name)
	}
	if wildcard {
		return "*." + ascii
	}
	return ascii
}
