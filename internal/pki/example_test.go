package pki_test

import (
	"fmt"

	"whereru/internal/pki"
	"whereru/internal/simtime"
)

// ExampleCA shows issuance and OCSP-style revocation checking through the
// store.
func ExampleCA() {
	store := pki.NewStore()
	digicert := pki.NewCA(2, pki.DigiCert, []string{"RapidSSL"}, 365)

	day := simtime.Date(2022, 1, 10)
	cert, _ := digicert.Issue(day, "vtb.ru", "www.vtb.ru")
	store.Add(cert)

	fmt.Println("issuer:", cert.IssuerOrg)
	fmt.Println("russian:", cert.MatchesRussianTLD())
	fmt.Println("status:", store.Status(cert.Serial, day.Add(10)))

	// DigiCert revokes the sanctioned bank's certificate (the event that
	// triggered the Russian Trusted Root CA's creation).
	store.Revoke(cert.Serial, simtime.Date(2022, 2, 25), pki.ReasonCessation)
	fmt.Println("status after revocation:", store.Status(cert.Serial, simtime.Date(2022, 3, 1)))
	// Output:
	// issuer: DigiCert
	// russian: true
	// status: good
	// status after revocation: revoked
}

// ExampleStandardCatalog shows the paper's CA set, including the
// non-CT-logging Russian Trusted Root CA.
func ExampleStandardCatalog() {
	cas := pki.StandardCatalog()
	rtr := cas[pki.RussianTrustedRootCA]
	fmt.Println("CAs:", len(cas))
	fmt.Println("Russian CA logs to CT:", rtr.LogsToCT)
	fmt.Println("Russian CA browser-trusted:", rtr.BrowserTrusted)
	// Output:
	// CAs: 11
	// Russian CA logs to CT: false
	// Russian CA browser-trusted: false
}
