package pki

import (
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// RevocationReason is an RFC 5280 CRLReason subset.
type RevocationReason int

// Reasons used in the simulation.
const (
	ReasonUnspecified RevocationReason = 0
	// ReasonCessation models CAs withdrawing service (sanctions
	// compliance falls here in the simulation).
	ReasonCessation RevocationReason = 5
	// ReasonSuperseded models the domain itself replacing the
	// certificate while "testing different CAs" (§4.2).
	ReasonSuperseded RevocationReason = 4
)

// String names the reason.
func (r RevocationReason) String() string {
	switch r {
	case ReasonCessation:
		return "cessationOfOperation"
	case ReasonSuperseded:
		return "superseded"
	default:
		return "unspecified"
	}
}

// Revocation is one revoked certificate entry.
type Revocation struct {
	Serial uint64
	Day    simtime.Day
	Reason RevocationReason
}

// OCSPStatus is the certificate status an OCSP responder reports.
type OCSPStatus int

// OCSP statuses.
const (
	OCSPGood OCSPStatus = iota
	OCSPRevoked
	OCSPUnknown
)

// String names the status.
func (s OCSPStatus) String() string {
	switch s {
	case OCSPGood:
		return "good"
	case OCSPRevoked:
		return "revoked"
	default:
		return "unknown"
	}
}

// CRL is one CA's certificate revocation list. It doubles as the OCSP
// responder state: Status answers point-in-time queries the way the
// paper's Censys CRL/OCSP index does.
type CRL struct {
	// IssuerOrg is the CA this list belongs to.
	IssuerOrg string

	mu      sync.RWMutex
	revoked map[uint64]Revocation
	known   map[uint64]struct{} // serials the CA has issued
}

// NewCRL creates an empty revocation list for a CA.
func NewCRL(issuerOrg string) *CRL {
	return &CRL{
		IssuerOrg: issuerOrg,
		revoked:   make(map[uint64]Revocation),
		known:     make(map[uint64]struct{}),
	}
}

// Track registers an issued serial so OCSP can distinguish "good" from
// "unknown".
func (c *CRL) Track(serial uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.known[serial] = struct{}{}
}

// Revoke adds a serial to the list. Revoking twice keeps the earliest date.
func (c *CRL) Revoke(serial uint64, day simtime.Day, reason RevocationReason) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.revoked[serial]; ok && prev.Day <= day {
		return
	}
	c.revoked[serial] = Revocation{Serial: serial, Day: day, Reason: reason}
}

// Status answers an OCSP query for serial as of day.
func (c *CRL) Status(serial uint64, day simtime.Day) OCSPStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if rev, ok := c.revoked[serial]; ok && rev.Day <= day {
		return OCSPRevoked
	}
	if _, ok := c.known[serial]; ok {
		return OCSPGood
	}
	return OCSPUnknown
}

// Revocations returns all entries effective by day, sorted by serial.
func (c *CRL) Revocations(day simtime.Day) []Revocation {
	c.mu.RLock()
	out := make([]Revocation, 0, len(c.revoked))
	for _, rev := range c.revoked {
		if rev.Day <= day {
			out = append(out, rev)
		}
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}

// Len returns the total number of revocations on the list.
func (c *CRL) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.revoked)
}
