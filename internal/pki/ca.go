package pki

import (
	"fmt"
	"sync"

	"whereru/internal/simtime"
)

// Well-known issuer organizations — the top-10 CAs for Russian domains in
// the paper's Figure 8, plus the state-run Russian CA of §4.3.
const (
	LetsEncrypt   = "Let's Encrypt"
	DigiCert      = "DigiCert"
	CPanel        = "cPanel"
	GlobalSign    = "GlobalSign"
	Sectigo       = "Sectigo"
	ZeroSSL       = "ZeroSSL"
	GoGetSSL      = "GoGetSSL"
	GoogleTrust   = "Google"
	AmazonTrust   = "Amazon"
	CloudflareInc = "Cloudflare"
	// RussianTrustedRootCA is the CA stood up by Russia's Ministry of
	// Digital Development in March 2022. It does not log to CT and is not
	// trusted by major browsers.
	RussianTrustedRootCA = "Russian Trusted Root CA"
)

// CA issues certificates under one organization name.
type CA struct {
	// Org is the Issuer DN organization.
	Org string
	// IssuingCNs are the intermediate common names the CA issues under;
	// issuance round-robins across them (DigiCert → RapidSSL, GeoTrust…).
	IssuingCNs []string
	// RootOrg is the root of the chain the CA builds (usually Org).
	RootOrg string
	// LogsToCT controls whether issued certificates appear in CT logs.
	LogsToCT bool
	// BrowserTrusted mirrors whether major browser roots include this CA.
	BrowserTrusted bool
	// DefaultValidityDays is the lifetime of issued certificates
	// (90 for ACME-style CAs, 365 for commercial ones).
	DefaultValidityDays int

	mu      sync.Mutex
	counter uint64
	// id distinguishes serial spaces between CAs.
	id uint64
}

// NewCA builds a CA. id must be unique per CA within a world; it is folded
// into the high bits of serial numbers.
func NewCA(id uint64, org string, cns []string, validityDays int) *CA {
	if len(cns) == 0 {
		cns = []string{org + " CA"}
	}
	return &CA{
		Org:                 org,
		IssuingCNs:          cns,
		RootOrg:             org,
		LogsToCT:            true,
		BrowserTrusted:      true,
		DefaultValidityDays: validityDays,
		id:                  id,
	}
}

// Issue creates a certificate for the given names effective on day.
// names[0] becomes the CN; all names appear as SANs, per modern practice.
func (ca *CA) Issue(day simtime.Day, names ...string) (*Certificate, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("pki: %s: issue with no names", ca.Org)
	}
	norm := make([]string, len(names))
	for i, n := range names {
		norm[i] = NormalizeName(n)
	}
	ca.mu.Lock()
	ca.counter++
	serial := ca.id<<40 | ca.counter
	cn := ca.IssuingCNs[int(ca.counter)%len(ca.IssuingCNs)]
	ca.mu.Unlock()
	validity := ca.DefaultValidityDays
	if validity <= 0 {
		validity = 90
	}
	return &Certificate{
		Serial:    serial,
		IssuerOrg: ca.Org,
		IssuerCN:  cn,
		RootOrg:   ca.RootOrg,
		SubjectCN: norm[0],
		SANs:      norm,
		NotBefore: day,
		NotAfter:  day.Add(validity),
		Logged:    ca.LogsToCT,
	}, nil
}

// Issued returns how many certificates the CA has issued.
func (ca *CA) Issued() uint64 {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.counter
}

// StandardCatalog builds the paper's top-10 CA set plus the Russian
// Trusted Root CA, with issuing CNs and lifetimes that mirror each CA's
// real-world behavior.
func StandardCatalog() map[string]*CA {
	cas := map[string]*CA{}
	add := func(id uint64, org string, cns []string, validity int) {
		cas[org] = NewCA(id, org, cns, validity)
	}
	add(1, LetsEncrypt, []string{"R3", "E1"}, 90)
	add(2, DigiCert, []string{"DigiCert TLS RSA SHA256 2020 CA1", "RapidSSL TLS DV RSA Mixed SHA256 2020 CA-1", "GeoTrust TLS DV RSA Mixed SHA256 2020 CA-1"}, 365)
	add(3, CPanel, []string{"cPanel, Inc. Certification Authority"}, 90)
	add(4, GlobalSign, []string{"GlobalSign GCC R3 DV TLS CA 2020", "AlphaSSL CA - SHA256 - G2"}, 365)
	add(5, Sectigo, []string{"Sectigo RSA Domain Validation Secure Server CA"}, 365)
	add(6, ZeroSSL, []string{"ZeroSSL RSA Domain Secure Site CA"}, 90)
	add(7, GoGetSSL, []string{"GoGetSSL RSA DV CA"}, 365)
	add(8, GoogleTrust, []string{"GTS CA 1P5", "GTS CA 1D4"}, 90)
	add(9, AmazonTrust, []string{"Amazon RSA 2048 M01"}, 395)
	add(10, CloudflareInc, []string{"Cloudflare Inc ECC CA-3"}, 365)

	rtr := NewCA(11, RussianTrustedRootCA, []string{"Russian Trusted Sub CA"}, 365)
	rtr.LogsToCT = false
	rtr.BrowserTrusted = false
	cas[RussianTrustedRootCA] = rtr
	return cas
}
