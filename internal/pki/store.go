package pki

import (
	"fmt"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// Store is the simulation's ground-truth certificate corpus: every
// certificate ever issued, with per-CA revocation lists. The CT log and
// the IP-wide scanner each observe (different) subsets of the store, the
// way Censys's CT index and CUIDS relate to reality.
type Store struct {
	mu       sync.RWMutex
	bySerial map[uint64]*Certificate
	byIssuer map[string][]*Certificate
	crls     map[string]*CRL
	ordered  []*Certificate // in issuance order
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		bySerial: make(map[uint64]*Certificate),
		byIssuer: make(map[string][]*Certificate),
		crls:     make(map[string]*CRL),
	}
}

// Add records an issued certificate and tracks it on its CA's CRL.
func (s *Store) Add(c *Certificate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.bySerial[c.Serial]; dup {
		return fmt.Errorf("pki: duplicate serial %d", c.Serial)
	}
	s.bySerial[c.Serial] = c
	s.byIssuer[c.IssuerOrg] = append(s.byIssuer[c.IssuerOrg], c)
	s.ordered = append(s.ordered, c)
	crl, ok := s.crls[c.IssuerOrg]
	if !ok {
		crl = NewCRL(c.IssuerOrg)
		s.crls[c.IssuerOrg] = crl
	}
	crl.Track(c.Serial)
	return nil
}

// Get returns the certificate with the given serial.
func (s *Store) Get(serial uint64) (*Certificate, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.bySerial[serial]
	return c, ok
}

// Len returns the number of stored certificates.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ordered)
}

// Revoke marks a serial revoked on its issuer's CRL.
func (s *Store) Revoke(serial uint64, day simtime.Day, reason RevocationReason) error {
	s.mu.RLock()
	c, ok := s.bySerial[serial]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("pki: revoke of unknown serial %d", serial)
	}
	s.CRL(c.IssuerOrg).Revoke(serial, day, reason)
	return nil
}

// CRL returns (creating if needed) the revocation list for a CA.
func (s *Store) CRL(issuerOrg string) *CRL {
	s.mu.Lock()
	defer s.mu.Unlock()
	crl, ok := s.crls[issuerOrg]
	if !ok {
		crl = NewCRL(issuerOrg)
		s.crls[issuerOrg] = crl
	}
	return crl
}

// Issuers returns all issuer organizations seen, sorted.
func (s *Store) Issuers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byIssuer))
	for org := range s.byIssuer {
		out = append(out, org)
	}
	sort.Strings(out)
	return out
}

// ByIssuer returns the certificates issued by org, in issuance order.
func (s *Store) ByIssuer(org string) []*Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Certificate(nil), s.byIssuer[org]...)
}

// All returns every certificate in issuance order.
func (s *Store) All() []*Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Certificate(nil), s.ordered...)
}

// Select returns certificates matching the predicate, in issuance order.
func (s *Store) Select(pred func(*Certificate) bool) []*Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Certificate
	for _, c := range s.ordered {
		if pred(c) {
			out = append(out, c)
		}
	}
	return out
}

// Status answers an OCSP query against the issuing CA's state.
func (s *Store) Status(serial uint64, day simtime.Day) OCSPStatus {
	s.mu.RLock()
	c, ok := s.bySerial[serial]
	s.mu.RUnlock()
	if !ok {
		return OCSPUnknown
	}
	return s.CRL(c.IssuerOrg).Status(serial, day)
}
