package netsim

import (
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// OutageSchedule is a day-indexed registry of planned outage and route
// event windows, keyed by an arbitrary label (a provider key, a TLD, a
// server address, a route event key). It is the bookkeeping half of
// scheduled failures: the fault layer (dns.FaultTransport) enforces wire
// outages and the topology (Topology) enforces route events, while the
// schedule records what was planned so experiments and the serve API can
// ask "what was down on day X?" — e.g. Netnod withdrawing service from
// Russia, or the paper's footnote-8 collection outage.
//
// Every read path is deterministic regardless of registration order:
// Keys is sorted, Windows is normalized (sorted, overlapping/adjacent
// windows merged), and Events iterates keys in sorted order. This is the
// same bug class PR 1 fixed in servedTLDs — map iteration must never
// leak into output bytes.
type OutageSchedule struct {
	mu      sync.RWMutex
	windows map[string][]simtime.Window
	kinds   map[string]string
}

// ScheduledEvent is one normalized (key, kind, window) record from the
// schedule. Kind is "outage" for plain Add calls, or a route event kind
// (netsim.EventDepeer etc.) for AddEvent calls.
type ScheduledEvent struct {
	Key    string
	Kind   string
	Window simtime.Window
}

// NewOutageSchedule returns an empty schedule.
func NewOutageSchedule() *OutageSchedule {
	return &OutageSchedule{
		windows: make(map[string][]simtime.Window),
		kinds:   make(map[string]string),
	}
}

// Add records an outage window for key. Windows may overlap; reads merge
// them.
func (s *OutageSchedule) Add(key string, w simtime.Window) {
	s.AddEvent(key, "outage", w)
}

// AddEvent records a window for key with an explicit event kind (route
// events use their netsim kind: "depeer", "ixp-withdraw", "partition").
// All windows under one key share that key's kind; the first registration
// wins.
func (s *OutageSchedule) AddEvent(key, kind string, w simtime.Window) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windows[key] = append(s.windows[key], w)
	if _, ok := s.kinds[key]; !ok {
		s.kinds[key] = kind
	}
}

// normalized returns key's windows sorted by (From, To) with overlapping
// and adjacent windows merged. Callers hold at least a read lock.
func (s *OutageSchedule) normalized(key string) []simtime.Window {
	ws := s.windows[key]
	if len(ws) == 0 {
		return nil
	}
	out := make([]simtime.Window, len(ws))
	copy(out, ws)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	merged := out[:1]
	for _, w := range out[1:] {
		last := &merged[len(merged)-1]
		if w.From <= last.To+1 { // overlapping or adjacent
			if w.To > last.To {
				last.To = w.To
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// Windows returns the windows recorded for key, sorted by start day with
// overlapping and adjacent windows merged — a normal form independent of
// registration order.
func (s *OutageSchedule) Windows(key string) []simtime.Window {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.normalized(key)
}

// Keys returns every registered key, sorted.
func (s *OutageSchedule) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.windows))
	for key := range s.windows {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Events returns every scheduled event in normal form: keys in sorted
// order, each key's windows normalized. The result is deterministic for
// any registration order — it is what the serve API renders.
func (s *OutageSchedule) Events() []ScheduledEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.windows))
	for key := range s.windows {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []ScheduledEvent
	for _, key := range keys {
		kind := s.kinds[key]
		if kind == "" {
			kind = "outage"
		}
		for _, w := range s.normalized(key) {
			out = append(out, ScheduledEvent{Key: key, Kind: kind, Window: w})
		}
	}
	return out
}

// ActiveOn reports whether key has a scheduled outage covering day.
func (s *OutageSchedule) ActiveOn(key string, day simtime.Day) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.windows[key] {
		if w.Contains(day) {
			return true
		}
	}
	return false
}

// ActiveKeys returns the sorted keys with an outage covering day.
func (s *OutageSchedule) ActiveKeys(day simtime.Day) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for key, ws := range s.windows {
		for _, w := range ws {
			if w.Contains(day) {
				out = append(out, key)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
