package netsim

import (
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// OutageSchedule is a day-indexed registry of planned outage windows,
// keyed by an arbitrary label (a provider key, a TLD, a server address).
// It is the bookkeeping half of scheduled failures: the fault layer
// (dns.FaultTransport) enforces windows on the wire, while the schedule
// records what was planned so experiments can ask "what was down on day
// X?" — e.g. Netnod withdrawing service from Russia, or the paper's
// footnote-8 collection outage.
type OutageSchedule struct {
	mu      sync.RWMutex
	windows map[string][]simtime.Window
}

// NewOutageSchedule returns an empty schedule.
func NewOutageSchedule() *OutageSchedule {
	return &OutageSchedule{windows: make(map[string][]simtime.Window)}
}

// Add records an outage window for key. Windows may overlap.
func (s *OutageSchedule) Add(key string, w simtime.Window) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windows[key] = append(s.windows[key], w)
}

// Windows returns the windows recorded for key, in insertion order.
func (s *OutageSchedule) Windows(key string) []simtime.Window {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]simtime.Window, len(s.windows[key]))
	copy(out, s.windows[key])
	return out
}

// ActiveOn reports whether key has a scheduled outage covering day.
func (s *OutageSchedule) ActiveOn(key string, day simtime.Day) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.windows[key] {
		if w.Contains(day) {
			return true
		}
	}
	return false
}

// ActiveKeys returns the sorted keys with an outage covering day.
func (s *OutageSchedule) ActiveKeys(day simtime.Day) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for key, ws := range s.windows {
		for _, w := range ws {
			if w.Contains(day) {
				out = append(out, key)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
