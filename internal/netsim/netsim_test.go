package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"

	"whereru/internal/simtime"
)

func TestRegisterAndLookup(t *testing.T) {
	in := NewInternet(simtime.StudyStart)
	in.MustRegisterAS(AS{Number: 16509, Name: "AMAZON-02", Org: "Amazon", Country: "US"})
	as, ok := in.Lookup(16509)
	if !ok || as.Org != "Amazon" {
		t.Fatalf("Lookup(16509) = %+v, %v", as, ok)
	}
	if _, ok := in.Lookup(99999); ok {
		t.Fatal("Lookup of unknown ASN succeeded")
	}
	if _, err := in.RegisterAS(AS{Number: 16509}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestAllocateAndOrigin(t *testing.T) {
	in := NewInternet(simtime.StudyStart)
	in.MustRegisterAS(AS{Number: 13335, Org: "Cloudflare", Country: "US"})
	in.MustRegisterAS(AS{Number: 197695, Org: "REG.RU", Country: "RU"})

	p1, err := in.AllocatePrefix(13335)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := in.AllocatePrefix(197695)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Overlaps(p2) {
		t.Fatalf("allocated prefixes overlap: %v %v", p1, p2)
	}
	a1, err := in.NextAddr(13335)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := in.NextAddr(13335)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("NextAddr returned the same address twice")
	}
	if !p1.Contains(a1) || !p1.Contains(a2) {
		t.Fatalf("addresses %v %v outside prefix %v", a1, a2, p1)
	}
	asn, ok := in.OriginAS(a1)
	if !ok || asn != 13335 {
		t.Fatalf("OriginAS(%v) = %d, %v", a1, asn, ok)
	}
	if got := in.OriginCountry(a1); got != "US" {
		t.Fatalf("OriginCountry = %q", got)
	}
	if _, ok := in.OriginAS(netip.MustParseAddr("8.8.8.8")); ok {
		t.Fatal("unallocated space has an origin")
	}
	if got := in.OriginCountry(netip.MustParseAddr("8.8.8.8")); got != "" {
		t.Fatalf("unallocated OriginCountry = %q", got)
	}
}

func TestNextAddrRollsToNewPrefix(t *testing.T) {
	in := NewInternet(simtime.StudyStart)
	in.MustRegisterAS(AS{Number: 1, Org: "X", Country: "RU"})
	// NextAddr without any prefix allocates one on demand.
	a, err := in.NextAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	if asn, ok := in.OriginAS(a); !ok || asn != 1 {
		t.Fatal("on-demand allocation not routed")
	}
	if len(in.Allocations()) != 1 {
		t.Fatalf("Allocations = %v", in.Allocations())
	}
}

func TestNextAddrUnknownAS(t *testing.T) {
	in := NewInternet(simtime.StudyStart)
	if _, err := in.NextAddr(42); err == nil {
		t.Fatal("NextAddr for unknown AS succeeded")
	}
}

func TestOriginASProperty(t *testing.T) {
	in := NewInternet(simtime.StudyStart)
	in.MustRegisterAS(AS{Number: 1, Org: "A", Country: "RU"})
	in.MustRegisterAS(AS{Number: 2, Org: "B", Country: "US"})
	in.MustRegisterAS(AS{Number: 3, Org: "C", Country: "DE"})
	addrs := make(map[netip.Addr]ASN)
	for i := 0; i < 300; i++ {
		asn := ASN(i%3 + 1)
		a, err := in.NextAddr(asn)
		if err != nil {
			t.Fatal(err)
		}
		addrs[a] = asn
	}
	for a, want := range addrs {
		got, ok := in.OriginAS(a)
		if !ok || got != want {
			t.Fatalf("OriginAS(%v) = %d, want %d", a, got, want)
		}
	}
}

func TestClock(t *testing.T) {
	c := NewClock(simtime.ConflictStart)
	if c.Now() != simtime.ConflictStart {
		t.Fatal("initial day wrong")
	}
	if got := c.Advance(30); got != simtime.ConflictStart.Add(30) {
		t.Fatalf("Advance = %v", got)
	}
	c.Set(simtime.StudyEnd)
	if c.Now() != simtime.StudyEnd {
		t.Fatal("Set failed")
	}
}

func TestASesSorted(t *testing.T) {
	in := NewInternet(simtime.StudyStart)
	for _, n := range []ASN{300, 100, 200} {
		in.MustRegisterAS(AS{Number: n})
	}
	ases := in.ASes()
	if len(ases) != 3 || ases[0].Number != 100 || ases[2].Number != 300 {
		t.Fatalf("ASes not sorted: %v", ases)
	}
}

func TestAddrConversionProperty(t *testing.T) {
	f := func(v uint32) bool {
		return addrToU32(u32ToAddr(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkOriginAS(b *testing.B) {
	in := NewInternet(simtime.StudyStart)
	for n := ASN(1); n <= 200; n++ {
		in.MustRegisterAS(AS{Number: n})
		if _, err := in.AllocatePrefix(n); err != nil {
			b.Fatal(err)
		}
	}
	addr, _ := in.NextAddr(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := in.OriginAS(addr); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func TestOutageSchedule(t *testing.T) {
	s := NewOutageSchedule()
	d := simtime.MustParse("2021-03-22")
	s.Add("tld:ru", simtime.OneDay(d))
	s.Add("tld:ru", simtime.Window{From: d.Add(10), To: d.Add(12)})
	s.Add("provider:netnod", simtime.Window{From: d.Add(11), To: d.Add(20)})

	if !s.ActiveOn("tld:ru", d) || s.ActiveOn("tld:ru", d.Add(1)) {
		t.Error("single-day window misreported")
	}
	if s.ActiveOn("tld:xn--p1ai", d) {
		t.Error("unknown key reported active")
	}
	if got := len(s.Windows("tld:ru")); got != 2 {
		t.Errorf("Windows(tld:ru) = %d entries, want 2", got)
	}
	// Windows returns a copy: mutating it must not corrupt the schedule.
	s.Windows("tld:ru")[0] = simtime.Window{From: 0, To: 1 << 30}
	if s.ActiveOn("tld:ru", d.Add(5)) {
		t.Error("Windows leaked internal state")
	}

	keys := s.ActiveKeys(d.Add(11))
	if len(keys) != 2 || keys[0] != "provider:netnod" || keys[1] != "tld:ru" {
		t.Errorf("ActiveKeys = %v, want sorted [provider:netnod tld:ru]", keys)
	}
	if keys := s.ActiveKeys(d.Add(1)); len(keys) != 0 {
		t.Errorf("ActiveKeys on a quiet day = %v", keys)
	}
}
