package netsim

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"whereru/internal/simtime"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func pathEq(got PathInfo, want ...ASN) bool {
	if len(got.Path) != len(want) {
		return false
	}
	for i, asn := range want {
		if got.Path[i] != asn {
			return false
		}
	}
	return true
}

// TestRouteShortestPathFirst pins the BGP-lite policy order: hop count
// beats latency. A 2-hop 20ms route wins over a 3-hop 3ms one.
func TestRouteShortestPathFirst(t *testing.T) {
	topo := NewTopology()
	topo.AddLink(1, 2, ms(10), LinkTransit)
	topo.AddLink(2, 4, ms(10), LinkTransit)
	topo.AddLink(1, 3, ms(1), LinkPeering)
	topo.AddLink(3, 5, ms(1), LinkPeering)
	topo.AddLink(5, 4, ms(1), LinkPeering)

	pi, ok := topo.Router(1).Path(simtime.ConflictStart, 4)
	if !ok {
		t.Fatal("no path")
	}
	if !pathEq(pi, 1, 2, 4) || pi.Hops != 2 || pi.Latency != ms(20) {
		t.Fatalf("path = %+v, want [1 2 4] at 20ms", pi)
	}
}

// TestRouteTieBreaks pins the order among equal-hop candidates: lower
// total latency, then the lexicographically smaller AS path.
func TestRouteTieBreaks(t *testing.T) {
	latency := NewTopology()
	latency.AddLink(1, 2, ms(5), LinkTransit)
	latency.AddLink(2, 4, ms(5), LinkTransit)
	latency.AddLink(1, 3, ms(1), LinkTransit)
	latency.AddLink(3, 4, ms(1), LinkTransit)
	pi, ok := latency.Router(1).Path(simtime.ConflictStart, 4)
	if !ok || !pathEq(pi, 1, 3, 4) || pi.Latency != ms(2) {
		t.Fatalf("latency tie-break: path = %+v, want [1 3 4] at 2ms", pi)
	}

	lex := NewTopology()
	lex.AddLink(1, 3, ms(1), LinkTransit)
	lex.AddLink(3, 4, ms(1), LinkTransit)
	lex.AddLink(1, 2, ms(1), LinkTransit)
	lex.AddLink(2, 4, ms(1), LinkTransit)
	pi, ok = lex.Router(1).Path(simtime.ConflictStart, 4)
	if !ok || !pathEq(pi, 1, 2, 4) {
		t.Fatalf("lexicographic tie-break: path = %+v, want [1 2 4]", pi)
	}
}

// TestIXPFabric verifies fabric semantics: present members are pairwise
// adjacent at twice the port latency, and a fabric shortcut beats a
// longer transit detour.
func TestIXPFabric(t *testing.T) {
	topo := NewTopology()
	topo.AddLink(1, 2, ms(1), LinkTransit)
	topo.AddLink(2, 3, ms(1), LinkTransit)
	if err := topo.AddIXP("X", ms(3)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddIXP("X", ms(3)); err == nil {
		t.Fatal("duplicate IXP accepted")
	}
	if err := topo.AddIXPMember("nope", 1); err == nil {
		t.Fatal("member added to unknown IXP")
	}
	for _, m := range []ASN{1, 3, 3} { // re-adding is idempotent
		if err := topo.AddIXPMember("X", m); err != nil {
			t.Fatal(err)
		}
	}

	pi, ok := topo.Router(1).Path(simtime.ConflictStart, 3)
	if !ok {
		t.Fatal("no path")
	}
	if !pathEq(pi, 1, 3) || pi.Latency != 2*ms(3) {
		t.Fatalf("fabric path = %+v, want direct [1 3] at 2×port = 6ms", pi)
	}
	if ixps := topo.IXPs(); len(ixps) != 1 || ixps[0] != "X" {
		t.Fatalf("IXPs = %v", ixps)
	}
}

// TestDepeerWindow drives a depeering event across its window: the
// adjacency (direct link and fabric pair alike) exists before, vanishes
// inside, and returns after.
func TestDepeerWindow(t *testing.T) {
	d := simtime.ConflictStart
	win := simtime.Window{From: d.Add(10), To: d.Add(20)}

	topo := NewTopology()
	topo.AddLink(1, 2, ms(1), LinkTransit)
	if err := topo.AddIXP("X", ms(1)); err != nil {
		t.Fatal(err)
	}
	for _, m := range []ASN{1, 2} {
		if err := topo.AddIXPMember("X", m); err != nil {
			t.Fatal(err)
		}
	}
	topo.Depeer(2, 1, win) // argument order must not matter

	r := topo.Router(1)
	for _, c := range []struct {
		day  simtime.Day
		want bool
	}{
		{d, true},
		{win.From - 1, true},
		{win.From, false},
		{win.To, false},
		{win.To + 1, true},
	} {
		if _, ok := r.Path(c.day, 2); ok != c.want {
			t.Errorf("day %s: reachable = %v, want %v", c.day, ok, c.want)
		}
	}
	evs := topo.Events()
	if len(evs) != 1 || evs[0].Key != "depeer:AS1-AS2" || evs[0].Kind != EventDepeer {
		t.Fatalf("Events = %+v", evs)
	}
}

// TestIXPWithdrawal verifies that leaving a fabric removes every edge of
// that member, while the other members keep peering.
func TestIXPWithdrawal(t *testing.T) {
	d := simtime.ConflictStart
	win := simtime.Window{From: d, To: d.Add(5)}

	topo := NewTopology()
	if err := topo.AddIXP("X", ms(1)); err != nil {
		t.Fatal(err)
	}
	for _, m := range []ASN{1, 2, 3} {
		if err := topo.AddIXPMember("X", m); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.WithdrawIXPMember("nope", 3, win); err == nil {
		t.Fatal("withdrawal from unknown IXP accepted")
	}
	if err := topo.WithdrawIXPMember("X", 3, win); err != nil {
		t.Fatal(err)
	}

	r := topo.Router(1)
	if _, ok := r.Path(d, 3); ok {
		t.Error("withdrawn member still reachable")
	}
	if _, ok := r.Path(d, 2); !ok {
		t.Error("remaining members lost their peering")
	}
	if _, ok := r.Path(win.To+1, 3); !ok {
		t.Error("membership did not return after the window")
	}
}

// TestPartition verifies the group-boundary cut: nothing crosses, both
// sides keep their internal connectivity.
func TestPartition(t *testing.T) {
	d := simtime.ConflictStart
	win := simtime.Window{From: d, To: d.Add(13)}

	topo := NewTopology()
	topo.AddLink(1, 2, ms(1), LinkTransit)
	topo.AddLink(2, 3, ms(1), LinkTransit)
	topo.AddLink(3, 4, ms(1), LinkTransit)
	topo.Partition("test", []ASN{3, 4}, win)

	r := topo.Router(1)
	if _, ok := r.Path(d, 2); !ok {
		t.Error("outside-group connectivity lost")
	}
	for _, dst := range []ASN{3, 4} {
		if _, ok := r.Path(d, dst); ok {
			t.Errorf("partitioned AS%d reachable from outside", dst)
		}
	}
	// Inside the group the graph still works: 4 is reachable from 3.
	if pi, ok := topo.Router(3).Path(d, 4); !ok || pi.Hops != 1 {
		t.Errorf("intra-group path = %+v, %v", pi, ok)
	}
	if _, ok := r.Path(win.To+1, 4); !ok {
		t.Error("partition did not lift after the window")
	}
}

// TestRouteVersion pins the version segmentation: one bump when a window
// opens, one when it closes, constant in between.
func TestRouteVersion(t *testing.T) {
	d := simtime.ConflictStart
	topo := NewTopology()
	topo.AddLink(1, 2, ms(1), LinkTransit)
	topo.Depeer(1, 2, simtime.Window{From: d.Add(10), To: d.Add(20)})
	topo.Depeer(1, 2, simtime.Window{From: d.Add(15), To: d.Add(30)})

	if v0, v1 := topo.Version(d), topo.Version(d.Add(9)); v0 != v1 {
		t.Errorf("version changed without an event boundary: %d vs %d", v0, v1)
	}
	seen := map[int]bool{}
	last := -1
	for day := d; day <= d.Add(40); day++ {
		v := topo.Version(day)
		if v < last {
			t.Fatalf("version not monotone at %s: %d after %d", day, v, last)
		}
		last = v
		seen[v] = true
	}
	// Boundaries at From(10), From(15), To+1(21), To+1(31): 5 distinct
	// versions over the walk.
	if len(seen) != 5 {
		t.Errorf("saw %d versions, want 5", len(seen))
	}
	for _, pair := range [][2]simtime.Day{{d.Add(9), d.Add(10)}, {d.Add(30), d.Add(31)}} {
		if topo.Version(pair[0]) == topo.Version(pair[1]) {
			t.Errorf("no version bump across boundary %s→%s", pair[0], pair[1])
		}
	}
}

// TestEventsSorted verifies Events returns (window start, key) order
// regardless of registration order.
func TestEventsSorted(t *testing.T) {
	d := simtime.ConflictStart
	topo := NewTopology()
	if err := topo.AddIXP("X", ms(1)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddIXPMember("X", 7); err != nil {
		t.Fatal(err)
	}
	topo.Depeer(5, 6, simtime.Window{From: d.Add(9), To: d.Add(10)})
	if err := topo.WithdrawIXPMember("X", 7, simtime.Window{From: d, To: d.Add(3)}); err != nil {
		t.Fatal(err)
	}
	topo.Partition("p", []ASN{5}, simtime.Window{From: d, To: d.Add(2)})

	evs := topo.Events()
	if len(evs) != 3 {
		t.Fatalf("Events = %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		prev, cur := evs[i-1], evs[i]
		if cur.Window.From < prev.Window.From ||
			(cur.Window.From == prev.Window.From && cur.Key < prev.Key) {
			t.Fatalf("events out of order: %+v before %+v", prev, cur)
		}
	}
}

// TestRouterConcurrent hammers one router from many goroutines across
// days spanning an event boundary (run with -race): table computation and
// caching must be safe, and answers must match a fresh sequential router.
func TestRouterConcurrent(t *testing.T) {
	d := simtime.ConflictStart
	build := func() *Topology {
		topo := NewTopology()
		topo.AddLink(1, 2, ms(5), LinkTransit)
		topo.AddLink(2, 3, ms(5), LinkTransit)
		topo.AddLink(2, 4, ms(8), LinkTransit)
		if err := topo.AddIXP("X", ms(1)); err != nil {
			t.Fatal(err)
		}
		for _, m := range []ASN{1, 3, 4} {
			if err := topo.AddIXPMember("X", m); err != nil {
				t.Fatal(err)
			}
		}
		topo.Depeer(1, 3, simtime.Window{From: d.Add(10), To: d.Add(20)})
		return topo
	}
	shared := build().Router(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				day := d.Add((g + i) % 30)
				shared.Path(day, ASN(2+(i%3)))
			}
		}(g)
	}
	wg.Wait()

	fresh := build()
	for day := d; day <= d.Add(30); day++ {
		for dst := ASN(2); dst <= 4; dst++ {
			gotPI, gotOK := shared.Path(day, dst)
			wantPI, wantOK := fresh.Router(1).Path(day, dst)
			if gotOK != wantOK || gotPI.Latency != wantPI.Latency || gotPI.Hops != wantPI.Hops {
				t.Fatalf("day %s dst %d: concurrent router diverged: %+v,%v vs %+v,%v",
					day, dst, gotPI, gotOK, wantPI, wantOK)
			}
		}
	}
}

// TestClockConcurrent drives Set/Advance/Now from many goroutines (run
// with -race): the shared simulation clock must never tear.
func TestClockConcurrent(t *testing.T) {
	c := NewClock(simtime.ConflictStart)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch g % 3 {
				case 0:
					c.Set(simtime.ConflictStart.Add(i % 100))
				case 1:
					c.Advance(1)
				default:
					if d := c.Now(); d < simtime.ConflictStart {
						t.Errorf("clock before its floor: %s", d)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRouteView verifies the per-address adaptation: unallocated
// addresses and the vantage's own space are reachable at zero latency,
// allocated space follows the route table.
func TestRouteView(t *testing.T) {
	d := simtime.ConflictStart
	in := NewInternet(d)
	in.MustRegisterAS(AS{Number: 1, Country: "NL"})
	in.MustRegisterAS(AS{Number: 2, Country: "RU"})
	in.MustRegisterAS(AS{Number: 3, Country: "RU"})
	a1, _ := in.NextAddr(1)
	a2, _ := in.NextAddr(2)
	a3, _ := in.NextAddr(3)

	topo := NewTopology()
	topo.AddLink(1, 2, ms(4), LinkTransit)
	v := &RouteView{Net: in, R: topo.Router(1)}

	if lat, ok := v.Route(d, netip.MustParseAddr("8.8.8.8")); !ok || lat != 0 {
		t.Errorf("unallocated address = %v, %v, want reachable at 0", lat, ok)
	}
	if lat, ok := v.Route(d, a1); !ok || lat != 0 {
		t.Errorf("vantage's own address = %v, %v, want reachable at 0", lat, ok)
	}
	if lat, ok := v.Route(d, a2); !ok || lat != ms(4) {
		t.Errorf("routed address = %v, %v, want 4ms", lat, ok)
	}
	if _, ok := v.Route(d, a3); ok {
		t.Error("address in an unconnected AS reported reachable")
	}
	if v.Version(d) != 0 {
		t.Errorf("Version = %d on an eventless topology", v.Version(d))
	}
}

// TestOutageScheduleNormalization pins the schedule's normal form:
// sorted keys, merged overlapping and adjacent windows, kind defaults.
func TestOutageScheduleNormalization(t *testing.T) {
	d := simtime.ConflictStart
	s := NewOutageSchedule()
	// Registered out of order, overlapping and adjacent.
	s.Add("b", simtime.Window{From: d.Add(20), To: d.Add(25)})
	s.Add("b", simtime.Window{From: d, To: d.Add(5)})
	s.Add("b", simtime.Window{From: d.Add(3), To: d.Add(8)})  // overlaps the first
	s.Add("b", simtime.Window{From: d.Add(9), To: d.Add(12)}) // adjacent to the merge
	s.AddEvent("a", EventDepeer, simtime.Window{From: d, To: d.Add(1)})

	if keys := s.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, want sorted [a b]", keys)
	}
	ws := s.Windows("b")
	want := []simtime.Window{
		{From: d, To: d.Add(12)},
		{From: d.Add(20), To: d.Add(25)},
	}
	if len(ws) != len(want) || ws[0] != want[0] || ws[1] != want[1] {
		t.Fatalf("Windows(b) = %v, want %v", ws, want)
	}

	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("Events = %+v", evs)
	}
	if evs[0].Key != "a" || evs[0].Kind != EventDepeer {
		t.Errorf("event 0 = %+v, want key a kind depeer", evs[0])
	}
	for _, ev := range evs[1:] {
		if ev.Key != "b" || ev.Kind != "outage" {
			t.Errorf("event = %+v, want key b with default outage kind", ev)
		}
	}
}

// BenchmarkRouting measures a route-table build over a topology the size
// of the world's (a few dozen provider ASes on two fabrics), and the
// cached per-version lookup path the sweep workers hit.
func BenchmarkRouting(b *testing.B) {
	d := simtime.ConflictStart
	topo := NewTopology()
	topo.AddLink(1, 2, ms(5), LinkTransit)
	topo.AddLink(2, 3, ms(30), LinkTransit)
	for _, name := range []string{"A", "B"} {
		if err := topo.AddIXP(name, ms(2)); err != nil {
			b.Fatal(err)
		}
	}
	for i := ASN(100); i < 130; i++ {
		topo.AddLink(3, i, ms(8), LinkTransit)
		if err := topo.AddIXPMember("A", i); err != nil {
			b.Fatal(err)
		}
	}
	for i := ASN(200); i < 230; i++ {
		topo.AddLink(2, i, ms(8), LinkTransit)
		if err := topo.AddIXPMember("B", i); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("table-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := topo.routesFrom(1, d); len(got) < 60 {
				b.Fatalf("route table has %d entries", len(got))
			}
		}
	})
	b.Run("cached-lookup", func(b *testing.B) {
		r := topo.Router(1)
		r.Path(d, 100) // warm the version table
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.Path(d, ASN(100+i%30)); !ok {
				b.Fatal("lookup failed")
			}
		}
	})
}
