package netsim_test

import (
	"fmt"

	"whereru/internal/netsim"
	"whereru/internal/simtime"
)

// ExampleInternet shows the address plan: register ASes, assign
// addresses, and answer origin-AS questions (the BGP-table analog the
// hosting analyses depend on).
func ExampleInternet() {
	in := netsim.NewInternet(simtime.Date(2022, 2, 24))
	in.MustRegisterAS(netsim.AS{Number: 13335, Org: "Cloudflare", Country: "US"})
	in.MustRegisterAS(netsim.AS{Number: 197695, Org: "REG.RU", Country: "RU"})

	cf, _ := in.NextAddr(13335)
	ru, _ := in.NextAddr(197695)

	asn, _ := in.OriginAS(cf)
	fmt.Printf("%v originates from AS%d (%s)\n", cf, asn, in.OriginCountry(cf))
	asn, _ = in.OriginAS(ru)
	fmt.Printf("%v originates from AS%d (%s)\n", ru, asn, in.OriginCountry(ru))
	// Output:
	// 11.0.0.1 originates from AS13335 (US)
	// 11.1.0.1 originates from AS197695 (RU)
}
