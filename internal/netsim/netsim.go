// Package netsim models the simulated Internet the measurement pipeline
// runs against: autonomous systems, IPv4 prefix allocations, sequential
// address assignment, origin-AS lookup (the BGP analog), and a shared
// simulation clock. The DNS "wire" itself is dns.MemNet (or real UDP); this
// package owns the address plan that makes geolocation and per-ASN
// analyses meaningful.
package netsim

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"whereru/internal/simtime"
)

// ASN is an autonomous system number.
type ASN uint32

// AS describes an autonomous system in the simulation.
type AS struct {
	Number ASN
	// Name is the short network name, e.g. "AMAZON-02".
	Name string
	// Org is the operating organization, e.g. "Amazon".
	Org string
	// Country is the ISO 3166-1 alpha-2 code where the network's
	// infrastructure is located (the simulation geolocates a network's
	// whole address space to this country unless geo overrides it).
	Country string
}

// Clock is the shared simulation clock. Authoritative handlers consult it
// so the same server answers differently on different simulated days.
type Clock struct {
	mu  sync.RWMutex
	day simtime.Day
}

// NewClock returns a clock set to the given day.
func NewClock(day simtime.Day) *Clock { return &Clock{day: day} }

// Now returns the current simulation day.
func (c *Clock) Now() simtime.Day {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.day
}

// Set moves the clock to day.
func (c *Clock) Set(day simtime.Day) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.day = day
}

// Advance moves the clock forward n days and returns the new day.
func (c *Clock) Advance(n int) simtime.Day {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.day += simtime.Day(n)
	return c.day
}

type allocation struct {
	lo, hi uint32 // inclusive address range
	asn    ASN
	next   uint32 // next unassigned address within the range
}

// Internet is the address plan: AS registry plus disjoint prefix
// allocations with longest-prefix (here: unique-range) origin lookup.
type Internet struct {
	Clock *Clock

	mu     sync.RWMutex
	ases   map[ASN]*AS
	allocs []*allocation // sorted by lo
	// nextBlock is the next free /16 block number in 10.x or beyond.
	nextBlock uint32
}

// NewInternet returns an empty address plan with the clock at day.
func NewInternet(day simtime.Day) *Internet {
	return &Internet{
		Clock: NewClock(day),
		ases:  make(map[ASN]*AS),
		// Start allocations at 11.0.0.0 to keep clear of loopback,
		// RFC1918 10/8 and the well-known test nets.
		nextBlock: 11 << 8, // block number is the upper 16 bits
	}
}

// RegisterAS adds an AS to the registry. Registering the same number twice
// is an error (provider catalogs are static in a run).
func (in *Internet) RegisterAS(as AS) (*AS, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, dup := in.ases[as.Number]; dup {
		return nil, fmt.Errorf("netsim: AS%d already registered", as.Number)
	}
	cp := as
	in.ases[as.Number] = &cp
	return &cp, nil
}

// MustRegisterAS is RegisterAS for static catalogs; it panics on error.
func (in *Internet) MustRegisterAS(as AS) *AS {
	a, err := in.RegisterAS(as)
	if err != nil {
		panic(err)
	}
	return a
}

// Lookup returns the AS record for an ASN.
func (in *Internet) Lookup(asn ASN) (*AS, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	as, ok := in.ases[asn]
	return as, ok
}

// ASes returns all registered ASes sorted by number.
func (in *Internet) ASes() []*AS {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]*AS, 0, len(in.ases))
	for _, as := range in.ases {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

func u32ToAddr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// AllocatePrefix carves a fresh /16 for the AS and returns it. Prefixes
// are disjoint by construction.
func (in *Internet) AllocatePrefix(asn ASN) (netip.Prefix, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.ases[asn]; !ok {
		return netip.Prefix{}, fmt.Errorf("netsim: unknown AS%d", asn)
	}
	lo := in.nextBlock << 16
	in.nextBlock++
	if in.nextBlock >= 0xE000 { // stay below 224.0.0.0 multicast
		return netip.Prefix{}, fmt.Errorf("netsim: address space exhausted")
	}
	a := &allocation{lo: lo, hi: lo | 0xFFFF, asn: asn, next: lo + 1}
	in.allocs = append(in.allocs, a)
	// Allocations are appended in increasing order, so the slice stays
	// sorted without re-sorting.
	return netip.PrefixFrom(u32ToAddr(lo), 16), nil
}

// NextAddr assigns the next unused address from the AS's most recent
// prefix, allocating a new prefix when the current one fills up.
func (in *Internet) NextAddr(asn ASN) (netip.Addr, error) {
	in.mu.Lock()
	var last *allocation
	for i := len(in.allocs) - 1; i >= 0; i-- {
		if in.allocs[i].asn == asn {
			last = in.allocs[i]
			break
		}
	}
	if last != nil && last.next < last.hi {
		addr := u32ToAddr(last.next)
		last.next++
		in.mu.Unlock()
		return addr, nil
	}
	in.mu.Unlock()
	if _, err := in.AllocatePrefix(asn); err != nil {
		return netip.Addr{}, err
	}
	return in.NextAddr(asn)
}

// OriginAS returns the AS originating addr, the simulation's BGP table
// lookup. ok is false for unallocated space.
func (in *Internet) OriginAS(addr netip.Addr) (ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	v := addrToU32(addr)
	in.mu.RLock()
	defer in.mu.RUnlock()
	i := sort.Search(len(in.allocs), func(i int) bool { return in.allocs[i].hi >= v })
	if i < len(in.allocs) && in.allocs[i].lo <= v && v <= in.allocs[i].hi {
		return in.allocs[i].asn, true
	}
	return 0, false
}

// OriginCountry returns the registration country of the AS originating
// addr ("" if unallocated). Geolocation proper lives in internal/geo; this
// is the coarse AS-registry view.
func (in *Internet) OriginCountry(addr netip.Addr) string {
	asn, ok := in.OriginAS(addr)
	if !ok {
		return ""
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if as, ok := in.ases[asn]; ok {
		return as.Country
	}
	return ""
}

// Allocations returns every (prefix, ASN) pair, for building geolocation
// snapshots. Ranges are reported as /16 prefixes in allocation order.
func (in *Internet) Allocations() []PrefixASN {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]PrefixASN, len(in.allocs))
	for i, a := range in.allocs {
		out[i] = PrefixASN{Prefix: netip.PrefixFrom(u32ToAddr(a.lo), 16), ASN: a.asn}
	}
	return out
}

// PrefixASN pairs an allocated prefix with its origin AS.
type PrefixASN struct {
	Prefix netip.Prefix
	ASN    ASN
}
