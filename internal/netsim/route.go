package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"whereru/internal/simtime"
)

// This file is the AS-level interdomain routing model layered on the
// Internet address plan. The base Internet answers "which AS originates
// this address?"; the Topology answers "can the measurement vantage reach
// that AS today, and at what path latency?". Adjacency comes from two
// sources — explicit transit/peering links with a per-link latency, and
// IXP fabrics (a named switch with member ASes and a per-fabric port
// latency; crossing a fabric costs two ports) — and is perturbed by
// clock-driven route events: depeerings, IXP-membership withdrawals, and
// partition windows. Path selection is deterministic BGP-lite: shortest
// AS path first, then lowest total latency, then the lexicographically
// smallest AS path, so route tables are a pure function of (topology,
// day) and byte-identical output survives any worker count.

// LinkKind distinguishes transit links from settlement-free peering. The
// routing policy treats them identically (shortest path wins); the kind
// is descriptive, for event labels and operator output.
type LinkKind uint8

// Link kinds.
const (
	LinkTransit LinkKind = iota
	LinkPeering
)

func (k LinkKind) String() string {
	if k == LinkPeering {
		return "peering"
	}
	return "transit"
}

// link is one bidirectional adjacency with a round-trip latency
// contribution.
type link struct {
	a, b ASN
	lat  time.Duration
	kind LinkKind
}

// ixp is a named peering fabric: every pair of present members is
// adjacent through the switch at twice the port latency.
type ixp struct {
	name    string
	port    time.Duration
	members []ASN // sorted
}

// Route event kinds, shared with the OutageSchedule's event records.
const (
	EventDepeer      = "depeer"
	EventIXPWithdraw = "ixp-withdraw"
	EventPartition   = "partition"
)

// RouteEvent is one scheduled routing perturbation. Events are windows on
// the simulation clock: inside the window the adjacency is suppressed,
// outside it the base topology holds. Key is a stable human-readable
// label ("depeer:AS8674-AS64500") used by schedules and the API.
type RouteEvent struct {
	Kind   string
	Key    string
	Window simtime.Window

	// Kind-specific payloads (internal; exported accessors would invite
	// callers to re-implement severed()).
	a, b   ASN          // EventDepeer
	ixp    string       // EventIXPWithdraw
	member ASN          // EventIXPWithdraw
	group  map[ASN]bool // EventPartition
}

// Topology is the AS adjacency graph plus its scheduled route events.
// Construction (AddLink/AddIXP/...) happens during world build; after
// that the topology is read-only except for event registration, which
// scenario setup performs once before measurement starts.
type Topology struct {
	mu     sync.RWMutex
	links  []link
	ixps   map[string]*ixp
	events []RouteEvent

	// routers memoizes one Router per vantage so repeated Router() calls
	// share the per-version route tables.
	routersMu sync.Mutex
	routers   map[ASN]*Router
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{ixps: make(map[string]*ixp), routers: make(map[ASN]*Router)}
}

// AddLink registers a bidirectional link between two ASes with a
// round-trip latency contribution.
func (t *Topology) AddLink(a, b ASN, lat time.Duration, kind LinkKind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links = append(t.links, link{a: a, b: b, lat: lat, kind: kind})
}

// AddIXP registers a peering fabric with a per-member port latency.
func (t *Topology) AddIXP(name string, port time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.ixps[name]; dup {
		return fmt.Errorf("netsim: IXP %q already registered", name)
	}
	t.ixps[name] = &ixp{name: name, port: port}
	return nil
}

// AddIXPMember connects an AS to a fabric.
func (t *Topology) AddIXPMember(name string, asn ASN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	x, ok := t.ixps[name]
	if !ok {
		return fmt.Errorf("netsim: unknown IXP %q", name)
	}
	i := sort.Search(len(x.members), func(i int) bool { return x.members[i] >= asn })
	if i < len(x.members) && x.members[i] == asn {
		return nil
	}
	x.members = append(x.members, 0)
	copy(x.members[i+1:], x.members[i:])
	x.members[i] = asn
	return nil
}

// IXPs returns the fabric names, sorted.
func (t *Topology) IXPs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.ixps))
	for name := range t.ixps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Depeer schedules the withdrawal of every adjacency between two ASes
// during the window: the direct link(s) and any shared fabric path
// between exactly this pair.
func (t *Topology) Depeer(a, b ASN, w simtime.Window) {
	if b < a {
		a, b = b, a
	}
	t.addEvent(RouteEvent{
		Kind: EventDepeer, Key: fmt.Sprintf("depeer:AS%d-AS%d", a, b),
		Window: w, a: a, b: b,
	})
}

// WithdrawIXPMember schedules an AS's departure from a fabric during the
// window: all of its fabric adjacencies there disappear.
func (t *Topology) WithdrawIXPMember(name string, asn ASN, w simtime.Window) error {
	t.mu.RLock()
	_, ok := t.ixps[name]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("netsim: unknown IXP %q", name)
	}
	t.addEvent(RouteEvent{
		Kind: EventIXPWithdraw, Key: fmt.Sprintf("ixp:%s:AS%d", name, asn),
		Window: w, ixp: name, member: asn,
	})
	return nil
}

// Partition schedules a cut of every adjacency crossing the group
// boundary during the window — the inside keeps talking to itself, the
// outside keeps talking to itself, and nothing crosses. label names the
// event ("runet").
func (t *Topology) Partition(label string, group []ASN, w simtime.Window) {
	g := make(map[ASN]bool, len(group))
	for _, asn := range group {
		g[asn] = true
	}
	t.addEvent(RouteEvent{
		Kind: EventPartition, Key: "partition:" + label,
		Window: w, group: g,
	})
}

func (t *Topology) addEvent(ev RouteEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, ev)
}

// Events returns the scheduled route events sorted by (window start, key)
// — a deterministic order independent of registration sequence.
func (t *Topology) Events() []RouteEvent {
	t.mu.RLock()
	out := make([]RouteEvent, len(t.events))
	copy(out, t.events)
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Window.From != out[j].Window.From {
			return out[i].Window.From < out[j].Window.From
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Version returns the route-state version for a day: a monotone integer
// that changes exactly when some event window opens or closes. Within one
// version window the adjacency — and therefore every route table — is
// constant, which is what lets the analysis engine classify once per
// (epoch × route-version window) and routers cache one table per version
// (the same segmentation trick geo.DB.Version enables for geolocation).
func (t *Topology) Version(day simtime.Day) int {
	bounds := t.boundaries()
	return sort.Search(len(bounds), func(i int) bool { return bounds[i] > day })
}

// boundaries returns the sorted distinct days on which the route state
// changes: each event window's first day and the day after its last.
func (t *Topology) boundaries() []simtime.Day {
	t.mu.RLock()
	defer t.mu.RUnlock()
	set := make(map[simtime.Day]bool, 2*len(t.events))
	for _, ev := range t.events {
		set[ev.Window.From] = true
		set[ev.Window.To+1] = true
	}
	out := make([]simtime.Day, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// severed reports whether any event active on day cuts the adjacency
// between a and b. Fabric membership withdrawal is handled separately
// (it removes all of a member's fabric edges, not one pair).
func (t *Topology) severed(a, b ASN, day simtime.Day) bool {
	for i := range t.events {
		ev := &t.events[i]
		if !ev.Window.Contains(day) {
			continue
		}
		switch ev.Kind {
		case EventDepeer:
			if (ev.a == a && ev.b == b) || (ev.a == b && ev.b == a) {
				return true
			}
		case EventPartition:
			if ev.group[a] != ev.group[b] {
				return true
			}
		}
	}
	return false
}

// withdrawn reports whether asn has left the named fabric on day.
func (t *Topology) withdrawn(name string, asn ASN, day simtime.Day) bool {
	for i := range t.events {
		ev := &t.events[i]
		if ev.Kind == EventIXPWithdraw && ev.ixp == name && ev.member == asn && ev.Window.Contains(day) {
			return true
		}
	}
	return false
}

// edge is one directed adjacency in the day's effective graph.
type edge struct {
	to  ASN
	lat time.Duration
}

// adjacency materializes the effective graph for a day: base links minus
// severed pairs, plus fabric cliques minus withdrawn members and severed
// pairs. Adjacency lists are sorted by neighbor so everything downstream
// is order-independent.
func (t *Topology) adjacency(day simtime.Day) map[ASN][]edge {
	t.mu.RLock()
	defer t.mu.RUnlock()
	adj := make(map[ASN][]edge)
	add := func(a, b ASN, lat time.Duration) {
		adj[a] = append(adj[a], edge{to: b, lat: lat})
		adj[b] = append(adj[b], edge{to: a, lat: lat})
	}
	for _, l := range t.links {
		if t.severed(l.a, l.b, day) {
			continue
		}
		add(l.a, l.b, l.lat)
	}
	names := make([]string, 0, len(t.ixps))
	for name := range t.ixps {
		names = append(names, name)
	}
	sort.Strings(names)
	var present []ASN
	for _, name := range names {
		x := t.ixps[name]
		present = present[:0]
		for _, m := range x.members {
			if !t.withdrawn(name, m, day) {
				present = append(present, m)
			}
		}
		for i := 0; i < len(present); i++ {
			for j := i + 1; j < len(present); j++ {
				if t.severed(present[i], present[j], day) {
					continue
				}
				add(present[i], present[j], 2*x.port)
			}
		}
	}
	for _, edges := range adj {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].to != edges[j].to {
				return edges[i].to < edges[j].to
			}
			return edges[i].lat < edges[j].lat
		})
	}
	return adj
}

// PathInfo describes the selected route from a vantage to a destination
// AS: the AS path (vantage first, destination last), its hop count, and
// the summed round-trip latency of its links.
type PathInfo struct {
	Path    []ASN
	Hops    int
	Latency time.Duration
}

// better is the deterministic tie-break among equal-hop candidate paths:
// lowest latency, then lexicographically smallest AS path. It must be a
// strict total order over distinct candidates — path selection folds
// candidates pairwise, so any order of comparisons yields the same
// winner.
func better(a, b PathInfo) bool {
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	for i := 0; i < len(a.Path) && i < len(b.Path); i++ {
		if a.Path[i] != b.Path[i] {
			return a.Path[i] < b.Path[i]
		}
	}
	return len(a.Path) < len(b.Path)
}

// routesFrom computes the route table from vantage for a day with a
// level-synchronous BFS (shortest AS path), resolving each level's
// candidates with better(). The result is independent of map iteration
// order: a node settles at the first level that reaches it, and its
// winning path is the better()-minimum over all of that level's
// candidates, a fold over an unordered set.
func (t *Topology) routesFrom(vantage ASN, day simtime.Day) map[ASN]PathInfo {
	adj := t.adjacency(day)
	dist := map[ASN]PathInfo{vantage: {Path: []ASN{vantage}, Hops: 0, Latency: 0}}
	frontier := []ASN{vantage}
	for len(frontier) > 0 {
		next := make(map[ASN]PathInfo)
		for _, n := range frontier {
			cur := dist[n]
			for _, e := range adj[n] {
				if _, settled := dist[e.to]; settled {
					continue
				}
				cand := PathInfo{
					Path:    append(append(make([]ASN, 0, len(cur.Path)+1), cur.Path...), e.to),
					Hops:    cur.Hops + 1,
					Latency: cur.Latency + e.lat,
				}
				if old, seen := next[e.to]; !seen || better(cand, old) {
					next[e.to] = cand
				}
			}
		}
		frontier = frontier[:0]
		for n, pi := range next {
			dist[n] = pi
			frontier = append(frontier, n)
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	}
	return dist
}

// Router answers reachability and latency questions from one vantage AS,
// caching one route table per route-state version. Safe for concurrent
// use by sweep workers.
type Router struct {
	topo    *Topology
	vantage ASN

	mu     sync.Mutex
	tables map[int]map[ASN]PathInfo
}

// Router returns the shared router for a vantage AS.
func (t *Topology) Router(vantage ASN) *Router {
	t.routersMu.Lock()
	defer t.routersMu.Unlock()
	if r, ok := t.routers[vantage]; ok {
		return r
	}
	r := &Router{topo: t, vantage: vantage, tables: make(map[int]map[ASN]PathInfo)}
	t.routers[vantage] = r
	return r
}

// Vantage returns the router's origin AS.
func (r *Router) Vantage() ASN { return r.vantage }

// table returns the route table for day, computing it at most once per
// route-state version.
func (r *Router) table(day simtime.Day) map[ASN]PathInfo {
	ver := r.topo.Version(day)
	r.mu.Lock()
	tbl, ok := r.tables[ver]
	r.mu.Unlock()
	if ok {
		return tbl
	}
	// Compute outside the lock (the graph is tiny but BFS under a mutex
	// would serialize sweep workers on the first query of a version);
	// duplicate computations produce identical tables, so last-write-wins
	// is harmless.
	tbl = r.topo.routesFrom(r.vantage, day)
	r.mu.Lock()
	r.tables[ver] = tbl
	r.mu.Unlock()
	return tbl
}

// Path returns the selected route to dst on day.
func (r *Router) Path(day simtime.Day, dst ASN) (PathInfo, bool) {
	pi, ok := r.table(day)[dst]
	return pi, ok
}

// Latency returns the path round-trip latency to dst on day; ok is false
// when no path exists.
func (r *Router) Latency(day simtime.Day, dst ASN) (time.Duration, bool) {
	pi, ok := r.table(day)[dst]
	return pi.Latency, ok
}

// RouteView adapts (Internet, Router) to per-address routing decisions:
// the shape the DNS transport layer (dns.RoutePolicy) and the analysis
// engine consume. Addresses outside the simulated allocation plan are
// treated as reachable at zero latency — they are outside the model, and
// failing them would turn bookkeeping gaps into phantom outages.
type RouteView struct {
	Net *Internet
	R   *Router
}

// Route returns the simulated path round-trip latency to the AS
// originating server; ok is false when no AS path exists on day.
func (v *RouteView) Route(day simtime.Day, server netip.Addr) (time.Duration, bool) {
	asn, ok := v.Net.OriginAS(server)
	if !ok {
		return 0, true
	}
	if asn == v.R.vantage {
		return 0, true
	}
	return v.R.Latency(day, asn)
}

// Version exposes the topology's route-state versioning (the analysis
// engine segments the day axis with it).
func (v *RouteView) Version(day simtime.Day) int { return v.R.topo.Version(day) }
