package report

import (
	"bytes"
	"strings"
	"testing"

	"whereru/internal/simtime"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "Providers",
		Headers: []string{"name", "share"},
	}
	tbl.AddRow("REG.RU", "13.0%")
	tbl.AddRow("Cloudflare (US)", "6.9%")
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Providers") {
		t.Error("missing title")
	}
	// Columns align: "share" starts at the same offset everywhere.
	idx := strings.Index(lines[1], "share")
	if idx < 0 {
		t.Fatal("missing header")
	}
	if !strings.HasPrefix(lines[3][idx:], "13.0%") {
		t.Errorf("row misaligned:\n%s", out)
	}
}

func TestChartRendering(t *testing.T) {
	days := []simtime.Day{simtime.MustParse("2022-01-01"), simtime.MustParse("2022-03-01"), simtime.MustParse("2022-05-01")}
	c := &Chart{
		Title:  "Test",
		Width:  40,
		Height: 8,
		YMax:   100,
		Days:   days,
		Series: []Series{{
			Name: "full", Mark: 'F',
			Points: map[simtime.Day]float64{days[0]: 10, days[1]: 50, days[2]: 90},
		}},
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	plot := out[:strings.Index(out, "legend")]
	if strings.Count(plot, "F") != 3 {
		t.Errorf("expected 3 marks in the plot area:\n%s", out)
	}
	if !strings.Contains(out, "legend: F=full") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "2022-01-01") || !strings.Contains(out, "2022-05-01") {
		t.Errorf("missing axis dates:\n%s", out)
	}
	// The 90 mark must be above the 10 mark (earlier line in output).
	hi := strings.Index(out, "F")
	lo := strings.LastIndex(out, "F")
	if hi == lo {
		t.Fatal("marks collapsed")
	}
}

func TestChartDegenerate(t *testing.T) {
	c := &Chart{Title: "Empty", Days: []simtime.Day{1}}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not enough points") {
		t.Error("degenerate chart not handled")
	}
}

func TestChartAutoScale(t *testing.T) {
	days := []simtime.Day{1, 2}
	c := &Chart{
		Days: days,
		Series: []Series{{
			Name: "x", Mark: 'x',
			Points: map[simtime.Day]float64{1: 3, 2: 47},
		}},
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50.0") {
		t.Errorf("auto y-max should round 47 up to 50:\n%s", buf.String())
	}
}

func TestDotTimeline(t *testing.T) {
	from := simtime.MustParse("2022-01-01")
	active := map[simtime.Day]bool{from: true, from.Add(4): true}
	d := &DotTimeline{
		Title: "CAs",
		From:  from,
		To:    from.Add(9),
		Step:  2,
		Rows:  []DotRow{{Name: "LE", Active: active}},
		Marks: map[simtime.Day]byte{from.Add(4): '|'},
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	// title, marker line, row line, footer.
	if len(lines) < 4 {
		t.Fatalf("output too short:\n%s", out)
	}
	row := lines[2]
	if !strings.HasPrefix(row, "LE ") {
		t.Fatalf("row = %q", row)
	}
	cells := row[3:]
	if cells != "*.*.." {
		t.Errorf("cells = %q, want *.*..", cells)
	}
	if !strings.Contains(lines[1], "|") {
		t.Errorf("marker missing: %q", lines[1])
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"day", "value", "note"}, [][]string{
		{"2022-01-01", "1.5", "plain"},
		{"2022-01-02", "2.5", `has,comma and "quote"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "day,value,note\n2022-01-01,1.5,plain\n2022-01-02,2.5,\"has,comma and \"\"quote\"\"\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.35%" {
		t.Error(Pct(12.345))
	}
	if Count(5, 1) != "5" {
		t.Error(Count(5, 1))
	}
	if got := Count(5, 200); !strings.Contains(got, "1000") {
		t.Error(got)
	}
}
