package report_test

import (
	"os"

	"whereru/internal/report"
)

// ExampleTable renders an aligned text table.
func ExampleTable() {
	t := &report.Table{
		Title:   "Issuers",
		Headers: []string{"CA", "share"},
	}
	t.AddRow("Let's Encrypt", "99.23%")
	t.AddRow("GlobalSign", "0.52%")
	t.WriteTo(os.Stdout)
	// Output:
	// Issuers
	// CA             share
	// -------------  ------
	// Let's Encrypt  99.23%
	// GlobalSign     0.52%
}

// ExampleFlows renders a Figure-6-style movement diagram.
func ExampleFlows() {
	f := &report.Flows{
		Source:   "AS47846 on 2022-03-08",
		Total:    100,
		BarWidth: 10,
	}
	f.Add("Serverel AS29802", 68)
	f.Add("remained", 2)
	f.WriteTo(os.Stdout)
	// Output:
	// AS47846 on 2022-03-08 (100 domains)
	//   └─▶ Serverel AS29802   68.0%  ███████ (68)
	//   └─▶ remained            2.0%  █ (2)
}
