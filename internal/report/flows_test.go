package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlowsRendering(t *testing.T) {
	f := &Flows{
		Title:    "Figure 6",
		Source:   "AS16509 on 2022-03-08",
		Total:    100,
		BarWidth: 20,
	}
	f.Add("remained", 43)
	f.Add("Serverel AS29802", 30)
	f.Add("left the zone", 2)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, source, 3 edges
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Sorted by weight.
	if !strings.Contains(lines[2], "remained") || !strings.Contains(lines[4], "left the zone") {
		t.Fatalf("edge order wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "43.0%") {
		t.Fatalf("share missing:\n%s", out)
	}
	// Bars are proportional: the 43% bar is longer than the 2% bar.
	bar43 := strings.Count(lines[2], "█")
	bar2 := strings.Count(lines[4], "█")
	if bar43 <= bar2 || bar2 == 0 {
		t.Fatalf("bars not proportional (%d vs %d):\n%s", bar43, bar2, out)
	}
}

func TestFlowsZeroTotal(t *testing.T) {
	f := &Flows{Source: "empty", Total: 0}
	f.Add("x", 0)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0%") {
		t.Errorf("zero-total rendering:\n%s", buf.String())
	}
}
