package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Flows renders a Sankey-style movement diagram as text: weighted edges
// from one left node to many right nodes, with proportional bars — the
// terminal rendition of the paper's Figures 6 and 7.
type Flows struct {
	Title string
	// Source is the left-hand node ("Amazon AS16509 on 2022-03-08").
	Source string
	// Total is the source's size; edges are shown as shares of it.
	Total int
	// Edges are the (destination, count) pairs.
	Edges []FlowEdge
	// BarWidth is the maximum bar length (default 40).
	BarWidth int
}

// FlowEdge is one destination of a flow.
type FlowEdge struct {
	Dest  string
	Count int
}

// Add appends an edge.
func (f *Flows) Add(dest string, count int) {
	f.Edges = append(f.Edges, FlowEdge{Dest: dest, Count: count})
}

// WriteTo renders the flows sorted by weight.
func (f *Flows) WriteTo(w io.Writer) (int64, error) {
	width := f.BarWidth
	if width <= 0 {
		width = 40
	}
	edges := append([]FlowEdge(nil), f.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Count != edges[j].Count {
			return edges[i].Count > edges[j].Count
		}
		return edges[i].Dest < edges[j].Dest
	})
	destWidth := 0
	for _, e := range edges {
		if len(e.Dest) > destWidth {
			destWidth = len(e.Dest)
		}
	}
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	fmt.Fprintf(&b, "%s (%d domains)\n", f.Source, f.Total)
	for _, e := range edges {
		share := 0.0
		if f.Total > 0 {
			share = float64(e.Count) / float64(f.Total)
		}
		bar := int(share*float64(width) + 0.5)
		if bar == 0 && e.Count > 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  └─▶ %-*s %6.1f%%  %s (%d)\n",
			destWidth, e.Dest, 100*share, strings.Repeat("█", bar), e.Count)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
