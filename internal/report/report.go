// Package report renders analysis results as aligned text tables, ASCII
// time-series charts, Figure-8-style dot timelines, and CSV — the output
// layer that regenerates the paper's figures and tables in a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"whereru/internal/simtime"
)

// Table is a simple aligned-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Series is one named line of a time-series chart.
type Series struct {
	Name   string
	Mark   byte
	Points map[simtime.Day]float64
}

// Chart is an ASCII time-series chart: X is time, Y is the value range.
type Chart struct {
	Title  string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 16)
	Days   []simtime.Day
	Series []Series
	// YMax fixes the top of the axis; 0 = auto.
	YMax float64
	// Gaps are scheduled-but-unmeasured days: their columns render a ':'
	// fill so carry-forward regions are visibly distinct from measured
	// ones (the way the paper's figures show the OpenINTEL outage).
	Gaps []simtime.Day
}

// WriteTo renders the chart.
func (c *Chart) WriteTo(w io.Writer) (int64, error) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	if len(c.Days) < 2 {
		n, err := fmt.Fprintf(w, "%s\n(not enough points)\n", c.Title)
		return int64(n), err
	}
	yMax := c.YMax
	if yMax == 0 {
		for _, s := range c.Series {
			for _, v := range s.Points {
				if v > yMax {
					yMax = v
				}
			}
		}
		yMax = math.Ceil(yMax/10) * 10
		if yMax == 0 {
			yMax = 1
		}
	}
	first, last := c.Days[0], c.Days[len(c.Days)-1]
	span := float64(last - first)
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.Series {
		for _, d := range c.Days {
			v, ok := s.Points[d]
			if !ok {
				continue
			}
			x := int(float64(d-first) / span * float64(width-1))
			y := height - 1 - int(v/yMax*float64(height-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = s.Mark
		}
	}
	// Gap columns: fill blank cells with ':' so the unmeasured region is
	// visible without obscuring any plotted series marks.
	gapShown := false
	for _, d := range c.Gaps {
		if d < first || d > last {
			continue
		}
		gapShown = true
		x := int(float64(d-first) / span * float64(width-1))
		for y := 0; y < height; y++ {
			if grid[y][x] == ' ' {
				grid[y][x] = ':'
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		yVal := yMax * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%7.1f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%7s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s%-*s%s\n", "", width-len(last.String())+1, first.String(), last.String())
	legend := make([]string, 0, len(c.Series))
	for _, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Mark, s.Name))
	}
	if gapShown {
		legend = append(legend, ":=collection gap")
	}
	fmt.Fprintf(&b, "%8slegend: %s", "", strings.Join(legend, "  "))
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  (y: %s)", c.YLabel)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// DotTimeline renders Figure-8-style per-entity activity rows: one row
// per name, one column per step of the window, '*' where active.
type DotTimeline struct {
	Title string
	From  simtime.Day
	To    simtime.Day
	// Step controls the column granularity in days (default 1).
	Step int
	// Rows maps a name to its set of active days.
	Rows []DotRow
	// Marks annotates dates with vertical markers (e.g. conflict start).
	Marks map[simtime.Day]byte
}

// DotRow is one timeline row.
type DotRow struct {
	Name   string
	Active map[simtime.Day]bool
}

// WriteTo renders the timeline.
func (d *DotTimeline) WriteTo(w io.Writer) (int64, error) {
	step := d.Step
	if step <= 0 {
		step = 1
	}
	nameWidth := 0
	for _, r := range d.Rows {
		if len(r.Name) > nameWidth {
			nameWidth = len(r.Name)
		}
	}
	var b strings.Builder
	if d.Title != "" {
		fmt.Fprintf(&b, "%s\n", d.Title)
	}
	// Marker line.
	if len(d.Marks) > 0 {
		fmt.Fprintf(&b, "%-*s ", nameWidth, "")
		for day := d.From; day <= d.To; day += simtime.Day(step) {
			mark := byte(' ')
			for md, m := range d.Marks {
				if md >= day && md < day.Add(step) {
					mark = m
				}
			}
			b.WriteByte(mark)
		}
		b.WriteByte('\n')
	}
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-*s ", nameWidth, r.Name)
		for day := d.From; day <= d.To; day += simtime.Day(step) {
			active := false
			for dd := day; dd < day.Add(step) && dd <= d.To; dd++ {
				if r.Active[dd] {
					active = true
					break
				}
			}
			if active {
				b.WriteByte('*')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s %s .. %s (%d-day columns)\n", nameWidth, "", d.From, d.To, step)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// CSV writes rows of values as comma-separated lines; values are quoted
// only when needed.
func CSV(w io.Writer, header []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Count formats an integer count with a paper-scale equivalent.
func Count(n, scale int) string {
	if scale <= 1 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d (≈%d at paper scale)", n, n*scale)
}
