// Command whereru runs the full reproduction: it builds the synthetic
// .ru/.рф ecosystem, collects five years of (simulated) OpenINTEL-style
// DNS sweeps plus the 2022 TLS scans, and regenerates every figure and
// table of "Where .ru? Assessing the Impact of Conflict on Russian Domain
// Infrastructure" (IMC 2022) with a paper-vs-measured index.
//
// Usage:
//
//	whereru [flags]
//
//	-scale N        population scale divisor (default 200; 2000 is fast)
//	-seed N         world seed (default 20220224)
//	-step N         dense sweep interval in days for 2022 (default 3)
//	-workers N      sweep concurrency (default 8)
//	-analysis-workers N  analysis shard count (default 0 = one per CPU)
//	-markdown FILE  also write the EXPERIMENTS.md content to FILE
//	-store FILE     also write the binary measurement store to FILE
//	-checkpoint F   journal each completed sweep to F (crash-safe collection)
//	-resume         replay the checkpoint journal and continue from the
//	                first unswept day (requires -checkpoint)
//	-drop DATES     comma-separated YYYY-MM-DD days to skip, simulating
//	                collection outages (flagged as gaps in the analyses)
//	-crash-after N  test hook: exit with code 3 after N checkpointed sweeps
//	-quiet          suppress progress logging
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"whereru/internal/core"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, core.ErrCrashInjected) {
			fmt.Fprintln(os.Stderr, "whereru:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "whereru:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Int("scale", 200, "population scale divisor (1:N of the paper's 11.7M domains)")
	seed := flag.Int64("seed", 20220224, "world seed")
	step := flag.Int("step", 3, "dense sweep interval in days for 2022")
	workers := flag.Int("workers", 8, "sweep concurrency")
	analysisWorkers := flag.Int("analysis-workers", 0, "analysis shard count for figure regeneration (0 = one per CPU)")
	markdown := flag.String("markdown", "", "write EXPERIMENTS.md content to this file")
	storePath := flag.String("store", "", "write the binary measurement store to this file")
	csvDir := flag.String("csvdir", "", "write per-figure CSV series into this directory")
	mx := flag.Bool("mx", true, "collect MX records (mail-measurement extension)")
	checkpoint := flag.String("checkpoint", "", "journal each completed sweep to this file (crash-safe collection)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal, then continue from the first unswept day")
	drop := flag.String("drop", "", "comma-separated YYYY-MM-DD sweep days to skip (simulated collection outages)")
	crashAfter := flag.Int("crash-after", 0, "test hook: exit code 3 after N checkpointed sweeps")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	var dropDays []simtime.Day
	if *drop != "" {
		for _, tok := range strings.Split(*drop, ",") {
			d, err := simtime.Parse(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("-drop: %w", err)
			}
			dropDays = append(dropDays, d)
		}
	}

	opts := core.Options{
		World:           world.Config{Seed: *seed, Scale: *scale, RFShare: 0.10},
		DenseStep:       *step,
		Workers:         *workers,
		AnalysisWorkers: *analysisWorkers,
		CollectMX:       *mx,
		CheckpointPath:  *checkpoint,
		Resume:          *resume,
		DropSweeps:      dropDays,
		CrashAfter:      *crashAfter,
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	study, err := core.New(opts)
	if err != nil {
		return err
	}
	if err := study.Collect(context.Background()); err != nil {
		return err
	}
	if err := study.RenderAll(os.Stdout); err != nil {
		return err
	}
	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			return err
		}
		if err := study.ExperimentsMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *markdown)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		err := study.ExportCSV(func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote CSV series to %s\n", *csvDir)
	}
	if *storePath != "" {
		f, err := os.Create(*storePath)
		if err != nil {
			return err
		}
		if err := study.SaveStore(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *storePath)
	}
	return nil
}
