// Command whereru runs the full reproduction: it builds the synthetic
// .ru/.рф ecosystem, collects five years of (simulated) OpenINTEL-style
// DNS sweeps plus the 2022 TLS scans, and regenerates every figure and
// table of "Where .ru? Assessing the Impact of Conflict on Russian Domain
// Infrastructure" (IMC 2022) with a paper-vs-measured index.
//
// Usage:
//
//	whereru [flags]
//
//	-scale N        population scale divisor (default 200; 2000 is fast)
//	-seed N         world seed (default 20220224)
//	-step N         dense sweep interval in days for 2022 (default 3)
//	-workers N      sweep concurrency (default 8)
//	-analysis-workers N  analysis shard count (default 0 = one per CPU)
//	-scenario NAME  activate a built-in routing scenario (netnod-depeering,
//	                ru-ixp-isolation, runet-partition): sweeps run through
//	                the AS-level route tables and the report gains the
//	                reachability and latency sections. For example:
//	                  whereru -scale 2000 -scenario netnod-depeering
//	                  whereru -scale 2000 -scenario runet-partition -step 7
//	-markdown FILE  also write the EXPERIMENTS.md content to FILE
//	-store FILE     also write the binary measurement store to FILE
//	-checkpoint F   journal each completed sweep to F (crash-safe collection)
//	-resume         replay the checkpoint journal and continue from the
//	                first unswept day (requires -checkpoint)
//	-drop DATES     comma-separated YYYY-MM-DD days to skip, simulating
//	                collection outages (flagged as gaps in the analyses)
//	-crash-after N  test hook: exit with code 3 after N checkpointed sweeps
//	-io-fault SPEC  inject disk faults into the checkpoint journal and
//	                -store write (e.g. "crash@4096", "enospc@1024",
//	                "syncfail@2"; see internal/iofault.ParseProfile). An
//	                injected crash exits with code 4.
//	-io-fault-seed N  seed for probabilistic -io-fault classes (default 1);
//	                the same seed replays the same faults byte-for-byte
//	-quiet          suppress progress logging
//
// Distributed collection (internal/grid): sweeps can be sharded across
// worker processes; results are byte-identical to a single-process run.
//
//	# coordinator with three external workers
//	whereru -scale 2000 -grid-listen 127.0.0.1:7100 -grid-wait 3
//	whereru -scale 2000 -grid-worker 127.0.0.1:7100 &   # ×3
//
//	-grid-listen A  coordinate sweeps on host:port (workers dial this)
//	-grid-worker A  run as a measurement worker against the coordinator
//	                at host:port (world flags must match the coordinator)
//	-grid-workers N spawn N in-process grid workers
//	-grid-shard N   domains per grid work unit (default 2000)
//	-grid-wait N    wait for N connected workers before the first sweep
//	-grid-metrics F write grid counters (units dispatched/completed/
//	                reassigned, worker liveness) to F after the run
//
// After collection the run summary (suppressed by -quiet) reports each
// sweep's wall-clock duration and per-domain latency quantiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"whereru/internal/core"
	"whereru/internal/iofault"
	"whereru/internal/openintel"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, core.ErrCrashInjected) {
			fmt.Fprintln(os.Stderr, "whereru:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "whereru:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Int("scale", 200, "population scale divisor (1:N of the paper's 11.7M domains)")
	seed := flag.Int64("seed", 20220224, "world seed")
	step := flag.Int("step", 3, "dense sweep interval in days for 2022")
	workers := flag.Int("workers", 8, "sweep concurrency")
	analysisWorkers := flag.Int("analysis-workers", 0, "analysis shard count for figure regeneration (0 = one per CPU)")
	scenario := flag.String("scenario", "", "routing scenario ("+strings.Join(world.Scenarios(), ", ")+"); empty disables the route layer")
	markdown := flag.String("markdown", "", "write EXPERIMENTS.md content to this file")
	storePath := flag.String("store", "", "write the binary measurement store to this file")
	csvDir := flag.String("csvdir", "", "write per-figure CSV series into this directory")
	mx := flag.Bool("mx", true, "collect MX records (mail-measurement extension)")
	checkpoint := flag.String("checkpoint", "", "journal each completed sweep to this file (crash-safe collection)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal, then continue from the first unswept day")
	drop := flag.String("drop", "", "comma-separated YYYY-MM-DD sweep days to skip (simulated collection outages)")
	crashAfter := flag.Int("crash-after", 0, "test hook: exit code 3 after N checkpointed sweeps")
	ioFault := flag.String("io-fault", "", "disk fault profile for checkpoint/store writes (e.g. crash@4096,enospc@1024); injected crashes exit 4")
	ioFaultSeed := flag.Int64("io-fault-seed", 1, "seed for probabilistic -io-fault classes")
	gridListen := flag.String("grid-listen", "", "coordinate distributed sweeps on this host:port")
	gridWorker := flag.String("grid-worker", "", "run as a grid measurement worker against the coordinator at host:port")
	gridWorkers := flag.Int("grid-workers", 0, "spawn N in-process grid workers")
	gridShard := flag.Int("grid-shard", 0, "domains per grid work unit (0 = default)")
	gridWait := flag.Int("grid-wait", 0, "wait for N connected grid workers before the first sweep")
	gridMetrics := flag.String("grid-metrics", "", "write grid counters to this file after the run")
	memStats := flag.String("memstats", "", "write store memory accounting to this file after collection")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *gridWorker != "" && (*gridListen != "" || *gridWorkers > 0) {
		return fmt.Errorf("-grid-worker is exclusive with -grid-listen/-grid-workers")
	}
	var dropDays []simtime.Day
	if *drop != "" {
		for _, tok := range strings.Split(*drop, ",") {
			d, err := simtime.Parse(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("-drop: %w", err)
			}
			dropDays = append(dropDays, d)
		}
	}

	opts := core.Options{
		World:           world.Config{Seed: *seed, Scale: *scale, RFShare: 0.10},
		DenseStep:       *step,
		Workers:         *workers,
		AnalysisWorkers: *analysisWorkers,
		Scenario:        *scenario,
		CollectMX:       *mx,
		CheckpointPath:  *checkpoint,
		Resume:          *resume,
		DropSweeps:      dropDays,
		CrashAfter:      *crashAfter,
		GridListen:      *gridListen,
		GridWorkers:     *gridWorkers,
		GridShard:       *gridShard,
		GridMinWorkers:  *gridWait,
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *ioFault != "" {
		profile, err := iofault.ParseProfile(*ioFault)
		if err != nil {
			return fmt.Errorf("-io-fault: %w", err)
		}
		// A crash-at-offset behaves like a hard kill: the process dies at
		// that exact byte, with a distinct exit code so harnesses can tell
		// an injected disk crash (4) from -crash-after's sweep crash (3).
		profile.Crash = func(c *iofault.Crash) {
			fmt.Fprintln(os.Stderr, "whereru:", c.Error())
			os.Exit(4)
		}
		opts.FS = iofault.NewFaultFS(iofault.OS, *ioFaultSeed, profile)
	}
	if *gridWorker != "" {
		// Worker mode: build a private world with the same flags the
		// coordinator runs with, serve units until told to drain.
		name := fmt.Sprintf("%s-%d", hostname(), os.Getpid())
		return core.RunGridWorker(context.Background(), opts, *gridWorker, name)
	}
	study, err := core.New(opts)
	if err != nil {
		return err
	}
	if err := study.Collect(context.Background()); err != nil {
		return err
	}
	if !*quiet {
		printRunSummary(os.Stderr, study.Stats)
	}
	if *memStats != "" {
		if err := writeMemStats(*memStats, study.Store.MemStats()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memStats)
	}
	if *gridMetrics != "" {
		if study.Grid == nil {
			return fmt.Errorf("-grid-metrics requires -grid-listen or -grid-workers")
		}
		f, err := os.Create(*gridMetrics)
		if err != nil {
			return err
		}
		if _, err := study.Grid.Metrics().WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *gridMetrics)
	}
	if err := study.RenderAll(os.Stdout); err != nil {
		return err
	}
	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			return err
		}
		if err := study.ExperimentsMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *markdown)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		err := study.ExportCSV(func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote CSV series to %s\n", *csvDir)
	}
	if *storePath != "" {
		// Atomic replace: a crash mid-write must not destroy a previous
		// good store at the same path.
		if err := study.SaveStoreFile(*storePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *storePath)
	}
	return nil
}

// printRunSummary reports each live sweep's wall-clock duration and
// per-domain latency quantiles, then the collection total. Replayed
// sweeps (resume) carry no runtime timings and are skipped.
func printRunSummary(w io.Writer, stats []openintel.SweepStats) {
	var total time.Duration
	timed := 0
	for _, st := range stats {
		if st.Duration <= 0 {
			continue
		}
		fmt.Fprintf(w, "sweep %s: %d domains in %s (latency p50 %s, p90 %s, p99 %s)\n",
			st.Day, st.Domains, st.Duration.Round(time.Millisecond),
			st.LatencyP50, st.LatencyP90, st.LatencyP99)
		total += st.Duration
		timed++
	}
	if timed > 0 {
		fmt.Fprintf(w, "collection: %d sweeps in %s (avg %s/sweep)\n",
			timed, total.Round(time.Millisecond), (total / time.Duration(timed)).Round(time.Millisecond))
	}
}

// writeMemStats writes the store's memory accounting in a flat
// name-value format. The figures are deterministic for a given run
// configuration (accounted from the representation, not sampled from the
// allocator), which is what lets CI gate store_bytes_per_epoch against a
// checked-in threshold the way the allocs gate works.
func writeMemStats(path string, ms store.MemStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "store_domains %d\n", ms.Domains)
	fmt.Fprintf(f, "store_epochs %d\n", ms.Epochs)
	fmt.Fprintf(f, "store_dead_rows %d\n", ms.DeadRows)
	fmt.Fprintf(f, "store_naive_records %d\n", ms.NaiveRecords)
	fmt.Fprintf(f, "store_distinct_configs %d\n", ms.DistinctConfigs)
	fmt.Fprintf(f, "store_interned_hosts %d\n", ms.InternedHosts)
	fmt.Fprintf(f, "store_column_bytes %d\n", ms.ColumnBytes)
	fmt.Fprintf(f, "store_intern_bytes %d\n", ms.InternBytes)
	fmt.Fprintf(f, "store_index_bytes %d\n", ms.IndexBytes)
	fmt.Fprintf(f, "store_resident_bytes %d\n", ms.ResidentBytes())
	fmt.Fprintf(f, "store_bytes_per_epoch %d\n", int64(ms.BytesPerEpoch()+0.5))
	return f.Close()
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "worker"
	}
	return h
}
