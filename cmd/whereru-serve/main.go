// Command whereru-serve serves a study's figures and tables over HTTP as
// JSON (see internal/serve for the API). The study's measurements come
// from one of three sources, in order of preference:
//
//	-store FILE       load a binary measurement store written by
//	                  `whereru -store FILE` (fastest: no collection)
//	-checkpoint FILE  replay a sweep journal written by
//	                  `whereru -checkpoint FILE` (tolerates torn tails)
//	(neither)         collect the study in-process before serving
//
// The world context the analyses consult (geolocation, routing,
// registries, sanctions, certificate transparency) is rebuilt
// deterministically from -seed/-scale, which must match the run that
// produced the store or journal.
//
// Usage:
//
//	whereru-serve [flags]
//
//	-addr HOST:PORT  listen address (default 127.0.0.1:8334)
//	-store FILE      load this measurement store instead of collecting
//	-checkpoint F    replay this sweep journal instead of collecting
//	-scale N         population scale divisor (default 200)
//	-seed N          world seed (default 20220224)
//	-step N          dense sweep interval when collecting (default 3)
//	-scenario NAME   activate a built-in routing scenario; the study must
//	                 have been collected (or is collected here) under the
//	                 same scenario, and the reachability/latency figures
//	                 and /api/v1/outages light up
//	-max-concurrent N  concurrent analysis computations (default GOMAXPROCS)
//	-request-timeout D per-request deadline (default 30s)
//	-cache-entries N   result-cache capacity (default 512)
//	-follow          keep tailing the -checkpoint journal while serving:
//	                 new sweeps appended by a concurrent `whereru
//	                 -checkpoint FILE [-resume]` run are folded into the
//	                 live figures incrementally, the response cache is
//	                 patched in place, and /api/v1/stream/* endpoints
//	                 push one event per folded sweep (SSE or long-poll)
//	-follow-poll D   journal polling interval in follow mode (default 200ms)
//	-quiet           suppress progress logging
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"whereru/internal/core"
	"whereru/internal/serve"
	"whereru/internal/store"
	"whereru/internal/stream"
	"whereru/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whereru-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8334", "listen address")
	storePath := flag.String("store", "", "load this measurement store instead of collecting")
	checkpoint := flag.String("checkpoint", "", "replay this sweep journal instead of collecting")
	scale := flag.Int("scale", 200, "population scale divisor (must match the run that produced -store/-checkpoint)")
	seed := flag.Int64("seed", 20220224, "world seed (must match the run that produced -store/-checkpoint)")
	step := flag.Int("step", 3, "dense sweep interval in days when collecting")
	scenario := flag.String("scenario", "", "routing scenario (must match the run that produced -store/-checkpoint)")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent analysis computations (0 = GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
	cacheEntries := flag.Int("cache-entries", 0, "result-cache capacity (0 = default)")
	follow := flag.Bool("follow", false, "keep tailing the -checkpoint journal and fold new sweeps live")
	followPoll := flag.Duration("follow-poll", 0, "journal polling interval in follow mode (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	if *storePath != "" && *checkpoint != "" {
		return fmt.Errorf("-store and -checkpoint are mutually exclusive")
	}
	if *follow && *checkpoint == "" {
		return fmt.Errorf("-follow requires -checkpoint (the journal to tail)")
	}

	opts := core.Options{
		World:     world.Config{Seed: *seed, Scale: *scale, RFShare: 0.10},
		DenseStep: *step,
		Scenario:  *scenario,
		CollectMX: true,
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var study *core.Study
	var eng *stream.Engine
	var startOffset int64
	var err error
	switch {
	case *storePath != "":
		f, ferr := os.Open(*storePath)
		if ferr != nil {
			return ferr
		}
		study, err = core.LoadStore(opts, f)
		f.Close()
		if err != nil {
			return err
		}
	case *follow:
		var replay *store.JournalReplay
		study, replay, err = core.LoadCheckpointReplay(opts, *checkpoint)
		if err != nil {
			return err
		}
		eng = study.NewStreamEngine()
		if err := core.FoldReplay(eng, replay); err != nil {
			return err
		}
		startOffset = replay.GoodBytes
	case *checkpoint != "":
		study, err = core.LoadCheckpoint(opts, *checkpoint)
		if err != nil {
			return err
		}
	default:
		study, err = core.New(opts)
		if err != nil {
			return err
		}
		if err := study.Collect(ctx); err != nil {
			return err
		}
	}
	// A followed journal may legitimately be empty: the collector writing
	// it might not have swept yet.
	if len(study.Store.Sweeps()) == 0 && !*follow {
		return fmt.Errorf("the loaded study has no sweeps; nothing to serve")
	}

	srv := serve.New(study, serve.Options{
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *requestTimeout,
		CacheEntries:   *cacheEntries,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 2)
	go func() {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serving %d domains, %d sweeps on http://%s\n",
				study.Store.NumDomains(), len(study.Store.Sweeps()), *addr)
		}
		errc <- httpSrv.ListenAndServe()
	}()
	if *follow {
		go func() {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "following %s from offset %d\n", *checkpoint, startOffset)
			}
			if ferr := srv.Follow(ctx, serve.FollowOptions{
				Engine:      eng,
				JournalPath: *checkpoint,
				StartOffset: startOffset,
				Poll:        *followPoll,
				Progress:    opts.Progress,
			}); ferr != nil {
				errc <- fmt.Errorf("follow: %w", ferr)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "shutting down...")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
