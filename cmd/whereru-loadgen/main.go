// Command whereru-loadgen drives measured HTTP traffic against a running
// whereru-serve instance and reports latency percentiles per traffic
// class as JSON — the benchmark harness for the serve layer, follow mode
// included.
//
// Three traffic classes exercise the three serving paths:
//
//	warm   repeated GETs of the figure/sweeps/hosting endpoints —
//	       cache hits (and, under -follow, follow-patched entries)
//	cold   movement queries with rotating parameters — every request a
//	       distinct cache key, so each one runs a real computation
//	mixed  80% warm / 20% cold, the dashboard-plus-explorer shape
//
// After the run, loadgen scrapes /healthz and /metrics so the report
// records the store generation range covered and, when the server is
// following a journal, how many live folds overlapped the traffic.
//
// Usage:
//
//	whereru-loadgen [flags]
//
//	-url URL        base URL of a whereru-serve instance (default
//	                http://127.0.0.1:8334)
//	-mix CLASS      warm, cold or mixed (default mixed)
//	-duration D     how long to run (default 10s)
//	-concurrency N  parallel client workers (default 8)
//	-seed N         PRNG seed for request scheduling (default 1)
//	-label S        free-form label copied into the report
//	-out FILE       write the JSON report here (default stdout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whereru-loadgen:", err)
		os.Exit(1)
	}
}

// warmPaths are the endpoints a dashboard polls: all cacheable, all
// patched by follow mode.
var warmPaths = []string{
	"/api/v1/figures/1",
	"/api/v1/figures/2",
	"/api/v1/figures/3",
	"/api/v1/figures/4",
	"/api/v1/figures/5",
	"/api/v1/figures/reachability",
	"/api/v1/figures/latency",
	"/api/v1/hosting",
	"/api/v1/sweeps",
}

// coldASNs rotate through the movement endpoint; combined with a
// per-request date they make every cold request a distinct cache key.
var coldASNs = []uint32{197695, 13335, 24940, 16509, 20764, 8075, 15169, 12389}

// classStats aggregates one traffic class's measurements.
type classStats struct {
	Requests int `json:"requests"`
	// Saturated counts 503 responses: the server's fail-fast signal under
	// compute saturation, not a failure of the server or the harness.
	Saturated int   `json:"saturated,omitempty"`
	Errors    int   `json:"errors"`
	P50US     int64 `json:"p50_us"`
	P90US     int64 `json:"p90_us"`
	P99US     int64 `json:"p99_us"`
	MaxUS     int64 `json:"max_us"`
}

// report is the JSON document loadgen emits.
type report struct {
	Label           string                `json:"label,omitempty"`
	URL             string                `json:"url"`
	Mix             string                `json:"mix"`
	DurationSeconds float64               `json:"duration_seconds"`
	Concurrency     int                   `json:"concurrency"`
	Requests        int                   `json:"requests"`
	Saturated       int                   `json:"saturated"`
	Errors          int                   `json:"errors"`
	Classes         map[string]classStats `json:"classes"`
	GenerationStart uint64                `json:"generation_start"`
	GenerationEnd   uint64                `json:"generation_end"`
	StreamFolds     uint64                `json:"stream_folds"`
	FoldSecondsSum  float64               `json:"fold_seconds_sum"`
	FoldCount       uint64                `json:"fold_count"`
}

// sample is one timed request.
type sample struct {
	class     string
	dur       time.Duration
	err       bool
	saturated bool
}

func run() error {
	var (
		base        = flag.String("url", "http://127.0.0.1:8334", "base URL of a whereru-serve instance")
		mixFlag     = flag.String("mix", "mixed", "traffic class: warm, cold or mixed")
		duration    = flag.Duration("duration", 10*time.Second, "how long to run")
		concurrency = flag.Int("concurrency", 8, "parallel client workers")
		seed        = flag.Int64("seed", 1, "PRNG seed for request scheduling")
		label       = flag.String("label", "", "free-form label copied into the report")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	mix := *mixFlag
	if mix != "warm" && mix != "cold" && mix != "mixed" {
		return fmt.Errorf("-mix must be warm, cold or mixed (got %q)", mix)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	genStart, err := generation(client, *base)
	if err != nil {
		return fmt.Errorf("probing %s/healthz: %w", *base, err)
	}

	var (
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			local := make([]sample, 0, 1024)
			for i := 0; time.Now().Before(deadline); i++ {
				class := mix
				if mix == "mixed" {
					if rng.Intn(5) == 0 {
						class = "cold"
					} else {
						class = "warm"
					}
				}
				var path string
				if class == "warm" {
					path = warmPaths[rng.Intn(len(warmPaths))]
				} else {
					// Unique (asn, from) per request defeats the cache: each
					// cold GET runs a full movement computation.
					asn := coldASNs[rng.Intn(len(coldASNs))]
					day := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC).
						AddDate(0, 0, worker*10000+i)
					path = fmt.Sprintf("/api/v1/movement?asn=%d&from=%s", asn, day.Format("2006-01-02"))
				}
				start := time.Now()
				resp, err := client.Get(*base + path)
				elapsed := time.Since(start)
				bad, sat := err != nil, false
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusServiceUnavailable:
						sat = true
					case resp.StatusCode != http.StatusOK:
						bad = true
					}
				}
				local = append(local, sample{class: class, dur: elapsed, err: bad, saturated: sat})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	genEnd, err := generation(client, *base)
	if err != nil {
		return err
	}
	folds, foldSum, foldCount := streamMetrics(client, *base)

	rep := report{
		Label: *label, URL: *base, Mix: mix,
		DurationSeconds: duration.Seconds(),
		Concurrency:     *concurrency,
		Classes:         make(map[string]classStats),
		GenerationStart: genStart, GenerationEnd: genEnd,
		StreamFolds: folds, FoldSecondsSum: foldSum, FoldCount: foldCount,
	}
	byClass := map[string][]time.Duration{}
	for _, s := range samples {
		rep.Requests++
		if s.err {
			rep.Errors++
		}
		if s.saturated {
			rep.Saturated++
		}
		byClass[s.class] = append(byClass[s.class], s.dur)
	}
	for class, durs := range byClass {
		cs := classStats{Requests: len(durs)}
		for _, s := range samples {
			if s.class != class {
				continue
			}
			if s.err {
				cs.Errors++
			}
			if s.saturated {
				cs.Saturated++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		cs.P50US = quantile(durs, 0.50).Microseconds()
		cs.P90US = quantile(durs, 0.90).Microseconds()
		cs.P99US = quantile(durs, 0.99).Microseconds()
		cs.MaxUS = durs[len(durs)-1].Microseconds()
		rep.Classes[class] = cs
	}

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if *out == "" || *out == "-" {
		_, err = os.Stdout.Write(body)
		return err
	}
	return os.WriteFile(*out, body, 0o644)
}

// quantile returns the q-th quantile of sorted durations (nearest rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// generation parses the store generation out of /healthz ("ok
// generation=N ...").
func generation(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	for _, field := range strings.Fields(string(body)) {
		if v, ok := strings.CutPrefix(field, "generation="); ok {
			return strconv.ParseUint(v, 10, 64)
		}
	}
	return 0, fmt.Errorf("no generation in healthz response %q", body)
}

// streamMetrics scrapes the whereru_stream_* counters (zeros when the
// scrape fails or the server is not following).
func streamMetrics(client *http.Client, base string) (folds uint64, foldSum float64, foldCount uint64) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, "whereru_stream_folds_total "); ok {
			folds, _ = strconv.ParseUint(v, 10, 64)
		} else if v, ok := strings.CutPrefix(line, "whereru_stream_fold_seconds_sum "); ok {
			foldSum, _ = strconv.ParseFloat(v, 64)
		} else if v, ok := strings.CutPrefix(line, "whereru_stream_fold_seconds_count "); ok {
			foldCount, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	return
}
