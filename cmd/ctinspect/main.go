// Command ctinspect inspects the simulated Certificate Transparency log:
// it prints the tree head, verifies inclusion and consistency proofs, and
// summarizes issuers — the auditor's view of the §4 certificate corpus.
//
// Usage:
//
//	ctinspect [-scale N] [-verify N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"whereru/internal/ct"
	"whereru/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctinspect:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Int("scale", 2000, "world scale divisor")
	seed := flag.Int64("seed", 20220224, "world seed")
	verify := flag.Int("verify", 64, "number of random inclusion proofs to verify")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building world (scale 1:%d)...\n", *scale)
	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale, RFShare: 0.10})
	if err != nil {
		return err
	}
	log := w.CTLog
	head := log.Head()
	fmt.Printf("log %q: size=%d root=%x last-timestamp=%s\n", log.Name, head.Size, head.Root[:8], head.Timestamp)

	// Issuer histogram.
	counts := map[string]int{}
	for _, e := range log.Scan(0, head.Size, nil) {
		counts[e.Cert.IssuerOrg]++
	}
	orgs := make([]string, 0, len(counts))
	for o := range counts {
		orgs = append(orgs, o)
	}
	sort.Slice(orgs, func(i, j int) bool { return counts[orgs[i]] > counts[orgs[j]] })
	fmt.Println("\nissuers:")
	for _, o := range orgs {
		fmt.Printf("  %-16s %6d\n", o, counts[o])
	}

	// Inclusion proofs.
	step := head.Size / int64(*verify)
	if step == 0 {
		step = 1
	}
	verified := 0
	for idx := int64(0); idx < head.Size; idx += step {
		e, err := log.Entry(idx)
		if err != nil {
			return err
		}
		proof, err := log.InclusionProof(idx, head.Size)
		if err != nil {
			return err
		}
		if !ct.VerifyInclusion(e.Cert.Marshal(), idx, head.Size, proof, head.Root) {
			return fmt.Errorf("inclusion proof FAILED for entry %d", idx)
		}
		verified++
	}
	fmt.Printf("\nverified %d inclusion proofs against the tree head\n", verified)

	// Consistency from a few historic sizes.
	for _, m := range []int64{1, head.Size / 4, head.Size / 2, head.Size - 1} {
		if m <= 0 || m >= head.Size {
			continue
		}
		rootM, err := log.RootAt(m)
		if err != nil {
			return err
		}
		proof, err := log.ConsistencyProof(m, head.Size)
		if err != nil {
			return err
		}
		if !ct.VerifyConsistency(m, head.Size, rootM, head.Root, proof) {
			return fmt.Errorf("consistency proof FAILED for %d → %d", m, head.Size)
		}
		fmt.Printf("consistency %8d → %8d: OK (%d hashes)\n", m, head.Size, len(proof))
	}
	return nil
}
