// Command rustore inspects a saved measurement store (the binary file
// written by `whereru -store FILE` or Study.SaveStore): summary
// statistics, per-domain configuration history, and CSV export of any
// domain's longitudinal record — the raw-data workbench next to
// cmd/whereru's finished report.
//
// Usage:
//
//	rustore info    FILE
//	rustore domains FILE [prefix]
//	rustore history FILE DOMAIN
//	rustore csv     FILE DOMAIN > out.csv
package main

import (
	"fmt"
	"net/netip"
	"os"
	"strings"

	"whereru/internal/dns"
	"whereru/internal/report"
	"whereru/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rustore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: rustore info|domains|history|csv FILE [args]")
	}
	cmd, path := args[0], args[1]
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := store.Read(f)
	if err != nil {
		return err
	}
	switch cmd {
	case "info":
		return info(st)
	case "domains":
		prefix := ""
		if len(args) > 2 {
			prefix = dns.Canonical(args[2])
			prefix = strings.TrimSuffix(prefix, ".")
		}
		return domains(st, prefix)
	case "history":
		if len(args) < 3 {
			return fmt.Errorf("usage: rustore history FILE DOMAIN")
		}
		return history(st, dns.Canonical(args[2]))
	case "csv":
		if len(args) < 3 {
			return fmt.Errorf("usage: rustore csv FILE DOMAIN")
		}
		return csvExport(st, dns.Canonical(args[2]))
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func info(st *store.Store) error {
	stats := st.Stats()
	sweeps := st.Sweeps()
	fmt.Printf("domains:       %d\n", stats.Domains)
	fmt.Printf("epochs:        %d\n", stats.Epochs)
	fmt.Printf("naive records: %d (%.1fx compression)\n", stats.NaiveRecords,
		float64(stats.NaiveRecords)/float64(max64(stats.Epochs, 1)))
	if len(sweeps) > 0 {
		fmt.Printf("sweeps:        %d (%s .. %s)\n", len(sweeps), sweeps[0], sweeps[len(sweeps)-1])
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func domains(st *store.Store, prefix string) error {
	n := 0
	for _, d := range st.Domains() {
		if prefix != "" && !strings.HasPrefix(d, prefix) {
			continue
		}
		fmt.Println(d)
		n++
	}
	fmt.Fprintf(os.Stderr, "%d domains\n", n)
	return nil
}

func history(st *store.Store, domain string) error {
	h := st.History(domain)
	if len(h) == 0 {
		return fmt.Errorf("no measurements for %s", domain)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("configuration history of %s (%d epochs)", domain, len(h)),
		Headers: []string{"from", "NS hosts", "NS addrs", "apex addrs", "MX hosts", "failed"},
	}
	for _, m := range h {
		t.AddRow(m.Day.String(),
			strings.Join(m.Config.NSHosts, " "),
			joinAddrs(m.Config.NSAddrs),
			joinAddrs(m.Config.ApexAddrs),
			strings.Join(m.Config.MXHosts, " "),
			fmt.Sprint(m.Config.Failed))
	}
	_, err := t.WriteTo(os.Stdout)
	return err
}

func joinAddrs(addrs []netip.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

func csvExport(st *store.Store, domain string) error {
	h := st.History(domain)
	if len(h) == 0 {
		return fmt.Errorf("no measurements for %s", domain)
	}
	rows := make([][]string, 0, len(h))
	for _, m := range h {
		rows = append(rows, []string{
			m.Day.String(),
			strings.Join(m.Config.NSHosts, ";"),
			joinAddrsSep(m.Config.NSAddrs),
			joinAddrsSep(m.Config.ApexAddrs),
			strings.Join(m.Config.MXHosts, ";"),
			fmt.Sprint(m.Config.Failed),
		})
	}
	return report.CSV(os.Stdout, []string{"from", "ns_hosts", "ns_addrs", "apex_addrs", "mx_hosts", "failed"}, rows)
}

func joinAddrsSep(addrs []netip.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ";")
}
