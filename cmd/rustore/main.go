// Command rustore inspects a saved measurement store (the binary file
// written by `whereru -store FILE` or Study.SaveStore): summary
// statistics, per-domain configuration history, and CSV export of any
// domain's longitudinal record — the raw-data workbench next to
// cmd/whereru's finished report.
//
// Usage:
//
//	rustore info    FILE
//	rustore domains FILE [prefix]
//	rustore history FILE DOMAIN
//	rustore csv     FILE DOMAIN > out.csv
//	rustore fsck    FILE [-repair]
//	rustore tail    FILE [-offset N] [-poll D]
//
// info describes either format — store ("WRST") or sweep journal
// ("WRJL"): format version, domain count, sweep day range and missing
// sweeps. fsck verifies the per-section checksums of either format,
// reports what a torn or bit-flipped file still holds, and with -repair
// truncates a journal's torn tail in place or rewrites a store to its
// recoverable contents. tail follows a journal as a collector appends to
// it — `tail -f` with WRJL framing — printing one line per durable
// segment until interrupted; -offset resumes after a previously consumed
// prefix (a prior run's printed offset).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"whereru/internal/dns"
	"whereru/internal/iofault"
	"whereru/internal/report"
	"whereru/internal/store"
)

// fsys routes fsck's repair writes through the fault-injection FS
// abstraction; tests and the chaos matrix swap in an iofault.FaultFS to
// crash or starve the repair itself.
var fsys iofault.FS = iofault.OS

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rustore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: rustore info|domains|history|csv|fsck|tail FILE [args]")
	}
	cmd, path := args[0], args[1]
	switch cmd {
	case "fsck":
		// fsck does its own file handling: it must read damaged files the
		// strict decoder below would reject.
		return fsck(path, len(args) > 2 && args[2] == "-repair")
	case "info":
		// info shares fsck's tolerant open path so it can describe both
		// formats (store and journal) including damaged files.
		return info(path)
	case "tail":
		return tail(path, args[2:])
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := store.Read(f)
	if err != nil {
		return err
	}
	switch cmd {
	case "domains":
		prefix := ""
		if len(args) > 2 {
			prefix = dns.Canonical(args[2])
			prefix = strings.TrimSuffix(prefix, ".")
		}
		return domains(st, prefix)
	case "history":
		if len(args) < 3 {
			return fmt.Errorf("usage: rustore history FILE DOMAIN")
		}
		return history(st, dns.Canonical(args[2]))
	case "csv":
		if len(args) < 3 {
			return fmt.Errorf("usage: rustore csv FILE DOMAIN")
		}
		return csvExport(st, dns.Canonical(args[2]))
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// tail follows a sweep journal as it grows, printing one line per
// complete, checksum-valid segment until interrupted. Torn or in-flight
// tails are waited out, exactly as the serve layer's follow watcher
// does.
func tail(path string, args []string) error {
	fl := flag.NewFlagSet("tail", flag.ContinueOnError)
	offset := fl.Int64("offset", 0, "byte offset to resume from (a previously printed offset)")
	poll := fl.Duration("poll", store.DefaultTailPoll, "polling interval")
	if err := fl.Parse(args); err != nil {
		return err
	}
	tl, err := store.OpenTail(path, *offset)
	if err != nil {
		return err
	}
	defer tl.Close()
	tl.SetPoll(*poll)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for {
		rec, err := tl.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if rec.Missing {
			fmt.Printf("%s missing offset=%d\n", rec.Day, tl.Offset())
			continue
		}
		fmt.Printf("%s sweep domains=%d failed=%d nxdomain=%d unreachable=%d retries=%d recovered=%d measurements=%d offset=%d\n",
			rec.Day, rec.Stats.Domains, rec.Stats.Failed, rec.Stats.NXDomain,
			rec.Stats.Unreachable, rec.Stats.Retries, rec.Stats.Recovered,
			len(rec.Measurements), tl.Offset())
	}
}

// fsck verifies a store or journal file by its magic, reports recoverable
// damage, and optionally repairs it.
func fsck(path string, repair bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [4]byte
	_, err = io.ReadFull(f, magic[:])
	f.Close()
	if err != nil {
		return fmt.Errorf("fsck: %s: too short to hold a header", path)
	}
	switch string(magic[:]) {
	case "WRST":
		return fsckStore(path, repair)
	case "WRJL":
		return fsckJournal(path, repair)
	default:
		return fmt.Errorf("fsck: %s: unrecognized magic %q", path, magic)
	}
}

func fsckStore(path string, repair bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	st, rec, err := store.ReadRecover(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("fsck: %s: %w", path, err)
	}
	fmt.Printf("%s: store format v%d\n", path, rec.Version)
	fmt.Printf("  domains:    %d of %d recovered\n", rec.Domains, rec.ExpectedDomains)
	fmt.Printf("  good bytes: %d\n", rec.GoodBytes)
	if !rec.Damaged {
		fmt.Println("  clean: all checksums verified")
		return nil
	}
	fmt.Printf("  DAMAGED: %s\n", rec.Reason)
	if !repair {
		return fmt.Errorf("fsck: %s holds recoverable damage (re-run with -repair to rewrite the recovered contents)", path)
	}
	// Rewrite atomically and durably: temp file, fsync, rename, directory
	// fsync — a power loss at any point leaves either the damaged (still
	// recoverable) original or the complete repair, never neither. Repair
	// always writes the current (v3) format.
	err = iofault.WriteAtomic(fsys, path, func(w io.Writer) error {
		_, err := st.WriteTo(w)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("  repaired: rewrote %d recovered domains\n", rec.Domains)
	return nil
}

func fsckJournal(path string, repair bool) error {
	replay, err := store.VerifyJournal(path)
	if err != nil {
		return fmt.Errorf("fsck: %s: %w", path, err)
	}
	fmt.Printf("%s: sweep journal\n", path)
	fmt.Printf("  sweeps:     %d replayable segments\n", len(replay.Sweeps))
	fmt.Printf("  good bytes: %d\n", replay.GoodBytes)
	if !replay.Torn() {
		fmt.Println("  clean: all segment checksums verified")
		return nil
	}
	fmt.Printf("  DAMAGED: %d torn trailing bytes\n", replay.TornBytes)
	if !repair {
		return fmt.Errorf("fsck: %s has a torn tail (re-run with -repair to truncate it)", path)
	}
	after, err := store.RepairJournalFS(fsys, path)
	if err != nil {
		return err
	}
	fmt.Printf("  repaired: truncated to %d bytes, %d sweeps retained\n", after.GoodBytes, len(after.Sweeps))
	return nil
}

// info describes a store or journal file: format version, day range,
// domain count and missing sweeps. It opens via the same tolerant path
// as fsck, so a damaged file still yields a description of its intact
// prefix (plus a damage note).
func info(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [4]byte
	_, err = io.ReadFull(f, magic[:])
	f.Close()
	if err != nil {
		return fmt.Errorf("info: %s: too short to hold a header", path)
	}
	switch string(magic[:]) {
	case "WRST":
		return infoStore(path)
	case "WRJL":
		return infoJournal(path)
	default:
		return fmt.Errorf("info: %s: unrecognized magic %q", path, magic)
	}
}

func infoStore(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	st, rec, err := store.ReadRecover(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("info: %s: %w", path, err)
	}
	fmt.Printf("%s: store format v%d\n", path, rec.Version)
	describeStore(st)
	if rec.Damaged {
		fmt.Printf("  DAMAGED: %s (run fsck -repair)\n", rec.Reason)
	}
	return nil
}

func infoJournal(path string) error {
	replay, err := store.VerifyJournal(path)
	if err != nil {
		return fmt.Errorf("info: %s: %w", path, err)
	}
	fmt.Printf("%s: sweep journal format v%d\n", path, replay.Version)
	// Replay the journal's measurements into a fresh store so the same
	// day-range/domain/missing summary applies to both formats.
	st := store.New()
	for _, rec := range replay.Sweeps {
		if rec.Missing {
			st.MarkMissingSweep(rec.Day)
			continue
		}
		st.BeginSweep(rec.Day)
		for _, m := range rec.Measurements {
			st.Add(m)
		}
	}
	describeStore(st)
	if replay.Torn() {
		fmt.Printf("  DAMAGED: %d torn trailing bytes (run fsck -repair)\n", replay.TornBytes)
	}
	return nil
}

func describeStore(st *store.Store) {
	stats := st.Stats()
	sweeps := st.Sweeps()
	fmt.Printf("  domains:       %d\n", stats.Domains)
	fmt.Printf("  epochs:        %d\n", stats.Epochs)
	fmt.Printf("  naive records: %d (%.1fx compression)\n", stats.NaiveRecords,
		float64(stats.NaiveRecords)/float64(max64(stats.Epochs, 1)))
	if len(sweeps) > 0 {
		fmt.Printf("  sweeps:        %d (%s .. %s)\n", len(sweeps), sweeps[0], sweeps[len(sweeps)-1])
	}
	if missing := st.MissingSweeps(); len(missing) > 0 {
		fmt.Printf("  missing:       %d sweeps (", len(missing))
		for i, d := range missing {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(d)
		}
		fmt.Println(")")
	}
	ms := st.MemStats()
	fmt.Println("  interning:")
	fmt.Printf("    distinct configs: %d (%.1fx epoch dedup)\n", ms.DistinctConfigs,
		float64(max64(ms.Epochs, 1))/float64(max64(int64(ms.DistinctConfigs), 1)))
	fmt.Printf("    pooled hosts:     %d strings, %d host slots, %d addr slots\n",
		ms.InternedHosts, ms.HostSlots, ms.AddrSlots)
	fmt.Printf("    resident bytes:   %d (columns %d, intern %d, index %d)\n",
		ms.ResidentBytes(), ms.ColumnBytes, ms.InternBytes, ms.IndexBytes)
	fmt.Printf("    bytes/epoch:      %.1f (naive would hold %d records)\n",
		ms.BytesPerEpoch(), ms.NaiveRecords)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func domains(st *store.Store, prefix string) error {
	n := 0
	for _, d := range st.Domains() {
		if prefix != "" && !strings.HasPrefix(d, prefix) {
			continue
		}
		fmt.Println(d)
		n++
	}
	fmt.Fprintf(os.Stderr, "%d domains\n", n)
	return nil
}

func history(st *store.Store, domain string) error {
	h := st.History(domain)
	if len(h) == 0 {
		return fmt.Errorf("no measurements for %s", domain)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("configuration history of %s (%d epochs)", domain, len(h)),
		Headers: []string{"from", "NS hosts", "NS addrs", "apex addrs", "MX hosts", "failed"},
	}
	for _, m := range h {
		t.AddRow(m.Day.String(),
			strings.Join(m.Config.NSHosts, " "),
			joinAddrs(m.Config.NSAddrs),
			joinAddrs(m.Config.ApexAddrs),
			strings.Join(m.Config.MXHosts, " "),
			fmt.Sprint(m.Config.Failed))
	}
	_, err := t.WriteTo(os.Stdout)
	return err
}

func joinAddrs(addrs []netip.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

func csvExport(st *store.Store, domain string) error {
	h := st.History(domain)
	if len(h) == 0 {
		return fmt.Errorf("no measurements for %s", domain)
	}
	rows := make([][]string, 0, len(h))
	for _, m := range h {
		rows = append(rows, []string{
			m.Day.String(),
			strings.Join(m.Config.NSHosts, ";"),
			joinAddrsSep(m.Config.NSAddrs),
			joinAddrsSep(m.Config.ApexAddrs),
			strings.Join(m.Config.MXHosts, ";"),
			fmt.Sprint(m.Config.Failed),
		})
	}
	return report.CSV(os.Stdout, []string{"from", "ns_hosts", "ns_addrs", "apex_addrs", "mx_hosts", "failed"}, rows)
}

func joinAddrsSep(addrs []netip.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ";")
}
