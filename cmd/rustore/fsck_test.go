package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"whereru/internal/iofault"
	"whereru/internal/simtime"
	"whereru/internal/store"
)

// quiet silences the command's stdout for the duration of the test.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

// buildStoreFile writes a small multi-sweep store and returns its path
// and bytes.
func buildStoreFile(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	s := store.New()
	for i := 0; i < 6; i++ {
		day := simtime.Day(600 + i*7)
		s.BeginSweep(day)
		for j := 0; j < 8; j++ {
			s.Add(store.Measurement{
				Domain: fmt.Sprintf("dom%02d.ru.", j),
				Day:    day,
				Config: store.Config{
					NSHosts: []string{fmt.Sprintf("ns%d.prov%d.ru.", j%2, j%3)},
				},
			})
		}
	}
	s.MarkMissingSweep(593)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.wrst")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// storeSectionEnds walks the v3 framing and returns each section's end
// offset — the damage sample points.
func storeSectionEnds(t *testing.T, full []byte) []int {
	t.Helper()
	var ends []int
	off := 6
	for off < len(full) {
		if off+4 > len(full) {
			t.Fatalf("torn framing at %d", off)
		}
		payloadLen := int(binary.BigEndian.Uint32(full[off:]))
		off += 4 + payloadLen + 4
		ends = append(ends, off)
	}
	return ends
}

func TestFsckCleanStore(t *testing.T) {
	quiet(t)
	path, _ := buildStoreFile(t, t.TempDir())
	if err := run([]string{"fsck", path}); err != nil {
		t.Fatalf("fsck on a clean store: %v", err)
	}
}

// TestFsckRepairStoreSectionFaults damages every section of a store
// file in turn — one flipped byte inside it, and a truncation at its
// boundary — and asserts fsck reports the damage, fsck -repair rewrites
// the recoverable contents, and the repaired file is strictly readable
// and clean.
func TestFsckRepairStoreSectionFaults(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	_, full := buildStoreFile(t, dir)
	ends := storeSectionEnds(t, full)

	prev := 6
	for i, end := range ends {
		for _, variant := range []string{"flip", "cut"} {
			path := filepath.Join(dir, fmt.Sprintf("d%02d-%s.wrst", i, variant))
			damaged := append([]byte(nil), full...)
			if variant == "flip" {
				damaged[prev+(end-prev)/2] ^= 0x20
			} else {
				if end == len(full) {
					continue // cutting at the final boundary is a clean file
				}
				damaged = damaged[:end+3] // torn mid-framing of the next section
			}
			if err := os.WriteFile(path, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			err := run([]string{"fsck", path})
			if err == nil || !strings.Contains(err.Error(), "-repair") {
				t.Fatalf("section %d %s: fsck without -repair = %v, want damage pointing at -repair", i, variant, err)
			}
			if err := run([]string{"fsck", path, "-repair"}); err != nil {
				t.Fatalf("section %d %s: fsck -repair: %v", i, variant, err)
			}
			// The repaired file is strictly valid and clean.
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.Read(f); err != nil {
				t.Fatalf("section %d %s: repaired store rejected by strict Read: %v", i, variant, err)
			}
			f.Close()
			if err := run([]string{"fsck", path}); err != nil {
				t.Fatalf("section %d %s: repaired store not clean: %v", i, variant, err)
			}
		}
		prev = end
	}
}

func TestFsckRepairJournalTornTail(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wrjl")
	j, err := store.CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := store.JournalSweep{Day: simtime.Day(700 + i*7), Stats: store.JournalStats{Domains: 1}}
		rec.Measurements = []store.Measurement{{
			Domain: "a.ru.", Day: rec.Day,
			Config: store.Config{NSHosts: []string{"ns.a.ru."}},
		}}
		if err := j.AppendSweep(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Tear the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01}) // torn length prefix
	f.Close()

	if err := run([]string{"fsck", path}); err == nil {
		t.Fatal("fsck accepted a torn journal")
	}
	if err := run([]string{"fsck", path, "-repair"}); err != nil {
		t.Fatalf("fsck -repair: %v", err)
	}
	replay, err := store.VerifyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Torn() || len(replay.Sweeps) != 3 {
		t.Fatalf("after repair: torn=%v sweeps=%d", replay.Torn(), len(replay.Sweeps))
	}
}

// TestFsckRepairFaulted drives the repair itself through a FaultFS: a
// failing rename or a crash mid-rewrite must leave the damaged-but-
// recoverable original in place, so a second repair attempt succeeds.
func TestFsckRepairFaulted(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	_, full := buildStoreFile(t, dir)
	path := filepath.Join(dir, "victim.wrst")
	damaged := append([]byte(nil), full...)
	damaged[len(damaged)*3/4] ^= 0x10
	writeVictim := func() {
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	defer func() { fsys = iofault.OS }()

	// Rename failure: the repair errors, the original survives.
	writeVictim()
	fsys = iofault.NewFaultFS(iofault.OS, 51, iofault.Profile{FailRenameOp: 1})
	if err := run([]string{"fsck", path, "-repair"}); !errors.Is(err, iofault.ErrRenameFault) {
		t.Fatalf("repair with failing rename = %v", err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, damaged) {
		t.Fatal("failed repair altered the original")
	}

	// Crash mid-rewrite: same guarantee.
	writeVictim()
	fsys = iofault.NewFaultFS(iofault.OS, 52, iofault.Profile{CrashAtByte: 40})
	func() {
		defer func() {
			if _, ok := recover().(*iofault.Crash); !ok {
				t.Fatal("expected injected crash")
			}
		}()
		run([]string{"fsck", path, "-repair"})
	}()
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, damaged) {
		t.Fatal("crashed repair altered the original")
	}

	// The disk heals; the retry completes and the file comes back clean.
	fsys = iofault.OS
	if err := run([]string{"fsck", path, "-repair"}); err != nil {
		t.Fatalf("retry after faults: %v", err)
	}
	if err := run([]string{"fsck", path}); err != nil {
		t.Fatalf("repaired store not clean: %v", err)
	}
}
