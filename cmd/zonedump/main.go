// Command zonedump materializes the simulated registry's daily zone file
// — the artifact the paper's measurement pipeline is seeded from — and
// can diff two days' snapshots to show registrations, deletions and
// name-server changes (e.g. the Netnod cutoff on 2022-03-03).
//
// Usage:
//
//	zonedump [-scale N] -date 2022-03-02 [-tld ru] > ru.zone
//	zonedump [-scale N] -date 2022-03-02 -diff 2022-03-03 -tld ru
package main

import (
	"flag"
	"fmt"
	"os"

	"whereru/internal/dns/zone"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zonedump:", err)
		os.Exit(1)
	}
}

func run() error {
	date := flag.String("date", simtime.ConflictStart.String(), "snapshot date (YYYY-MM-DD)")
	diffDate := flag.String("diff", "", "second date: print the diff instead of the zone")
	tld := flag.String("tld", "ru", "TLD to export (ru or xn--p1ai)")
	scale := flag.Int("scale", 2000, "world scale divisor")
	seed := flag.Int64("seed", 20220224, "world seed")
	flag.Parse()

	day, err := simtime.Parse(*date)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "building world (scale 1:%d)...\n", *scale)
	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale, RFShare: 0.10})
	if err != nil {
		return err
	}
	z, err := w.ExportZone(*tld, day)
	if err != nil {
		return err
	}
	if *diffDate == "" {
		_, err = z.WriteTo(os.Stdout)
		return err
	}

	day2, err := simtime.Parse(*diffDate)
	if err != nil {
		return err
	}
	z2, err := w.ExportZone(*tld, day2)
	if err != nil {
		return err
	}
	d := zone.Compare(z, z2)
	fmt.Printf("; %s: %d records, %s: %d records\n", day, z.Size(), day2, z2.Size())
	fmt.Printf("; +%d -%d records, %d delegations changed\n",
		len(d.Added), len(d.Removed), len(zone.ChangedDelegations(z, z2)))
	for _, rr := range d.Removed {
		fmt.Printf("- %s\n", rr)
	}
	for _, rr := range d.Added {
		fmt.Printf("+ %s\n", rr)
	}
	return nil
}
