// Command dnsdig is a dig-like client for the simulated Internet: it
// builds the world, sets the simulation clock to a date, and performs an
// iterative resolution for a name, printing the answer sections. With
// -serve it also exposes the simulated hierarchy on a real UDP socket and
// queries it over the network, demonstrating that the in-memory and UDP
// paths answer identically.
//
// Usage:
//
//	dnsdig [-date 2022-03-03] [-type NS|A] [-scale N] [-loss 0.1] [-retries 2] [-serve] name
//
// With -loss the resolution runs through the deterministic fault layer:
// every exchange is dropped with the given probability, retries and
// recoveries are reported, and the same -seed replays the same faults.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"

	"whereru/internal/dns"
	"whereru/internal/simtime"
	"whereru/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnsdig:", err)
		os.Exit(1)
	}
}

func run() error {
	date := flag.String("date", simtime.ConflictStart.String(), "simulation date (YYYY-MM-DD)")
	qtype := flag.String("type", "A", "query type (A, NS, SOA, ...)")
	scale := flag.Int("scale", 2000, "world scale divisor")
	seed := flag.Int64("seed", 20220224, "world seed (also seeds fault injection)")
	loss := flag.Float64("loss", 0, "injected packet-loss probability [0,1] on every server")
	retries := flag.Int("retries", 2, "query retransmissions after the first attempt")
	serve := flag.Bool("serve", false, "round-trip the query over a real UDP socket")
	trace := flag.Bool("trace", false, "print each delegation step (dig +trace style)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: dnsdig [flags] <name>")
	}
	name := dns.Canonical(flag.Arg(0))
	day, err := simtime.Parse(*date)
	if err != nil {
		return err
	}
	t, ok := dns.ParseType(*qtype)
	if !ok {
		return fmt.Errorf("unknown query type %q", *qtype)
	}

	fmt.Fprintf(os.Stderr, "building world (scale 1:%d)...\n", *scale)
	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale, RFShare: 0.10})
	if err != nil {
		return err
	}
	w.Clock().Set(day)
	resolver := w.NewResolver()
	var faults *dns.FaultTransport
	if *loss > 0 {
		// Lossy mode: the same -seed reproduces the same drops, so a
		// flaky-looking resolution can be replayed exactly.
		resolver, faults = w.NewFaultyResolver(*seed, dns.FaultProfile{Loss: *loss})
	}
	resolver.Client.Retries = *retries
	if *trace {
		resolver.Trace = func(s dns.TraceStep) {
			outcome := fmt.Sprintf("%s, %d answers", s.RCode, s.Answers)
			if s.Referral != "" {
				outcome = "referral to " + s.Referral
			}
			fmt.Printf(";; @%s (zone %s): %s %s -> %s\n", s.Server, s.Zone, s.Question.Name, s.Question.Type, outcome)
		}
	}
	ctx := context.Background()

	res, err := resolver.Resolve(ctx, name, t)
	if err != nil {
		return err
	}
	fmt.Printf(";; %s %s @%s (iterative, in-memory wire)\n", name, t, day)
	fmt.Printf(";; status: %s, zone: %s\n", res.RCode, res.Zone)
	for _, c := range res.Chain {
		fmt.Printf(";; alias: %s\n", c)
	}
	for _, rr := range res.Answers {
		fmt.Println(rr)
	}
	if faults != nil {
		fs := faults.Stats()
		cs := resolver.Client.Stats()
		fmt.Printf(";; faults: %d exchanges, %d dropped, %d servfail, %d truncated; client: %d retries, %d recovered\n",
			fs.Exchanges, fs.Dropped, fs.ServFails, fs.Truncated, cs.Retries, cs.Recovered)
	}

	if *serve {
		// Put a recursive front door on a real UDP socket and ask again.
		srv := &dns.Server{Handler: dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
			out := q.Reply()
			r, err := resolver.Resolve(context.Background(), q.Questions[0].Name, q.Questions[0].Type)
			if err != nil {
				out.RCode = dns.RCodeServFail
				return out
			}
			out.RCode = r.RCode
			out.Answers = r.Answers
			out.RecursionAvailable = true
			return out
		})}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
		addrPort := srv.Addr()
		fmt.Printf("\n;; re-querying over UDP @%s\n", addrPort)
		client := dns.NewClient(&dns.UDPTransport{Port: int(addrPort.Port())})
		resp, err := client.Query(ctx, addrPort.Addr(), name, t)
		if err != nil {
			return err
		}
		for _, rr := range resp.Answers {
			fmt.Println(rr)
		}
	}
	return nil
}
