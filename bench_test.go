// Package whereru's root benchmark harness: one benchmark per table and
// figure in the paper's evaluation (see DESIGN.md §3 for the mapping),
// plus the ablation benchmarks for the design choices DESIGN.md §4 calls
// out. The world is built and collected once per `go test -bench` run;
// each benchmark then measures regenerating its experiment from the
// collected data, which is the recurring cost in a real measurement
// pipeline (collection happens once, analyses run many times).
package whereru

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"testing"

	"whereru/internal/analysis"
	"whereru/internal/core"
	"whereru/internal/dns"
	"whereru/internal/openintel"
	"whereru/internal/pki"
	"whereru/internal/simtime"
	"whereru/internal/store"
	"whereru/internal/world"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
	benchErr   error
)

func study(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := core.New(core.QuickOptions())
		if err != nil {
			benchErr = err
			return
		}
		if err := s.Collect(context.Background()); err != nil {
			benchErr = err
			return
		}
		benchStudy = s
	})
	if benchErr != nil {
		b.Fatalf("building bench study: %v", benchErr)
	}
	return benchStudy
}

// BenchmarkFig1NSComposition regenerates Figure 1 (name-server country
// composition over the full study window).
func BenchmarkFig1NSComposition(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Fig1(); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig2TLDDependency regenerates Figure 2.
func BenchmarkFig2TLDDependency(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Fig2(); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig3TopTLDs regenerates Figure 3.
func BenchmarkFig3TopTLDs(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := s.Fig3()
		if top := analysis.TopTLDs(series, 5); len(top) != 5 {
			b.Fatal("missing TLDs")
		}
	}
}

// BenchmarkFig4ASNShares regenerates Figure 4.
func BenchmarkFig4ASNShares(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Fig4(); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig5Sanctioned regenerates Figure 5.
func BenchmarkFig5Sanctioned(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Fig5(); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig6AmazonMovement regenerates Figure 6.
func BenchmarkFig6AmazonMovement(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := s.Movement(16509, world.AmazonStmtDay); m.Original == 0 {
			b.Fatal("empty movement")
		}
	}
}

// BenchmarkFig7SedoMovement regenerates Figure 7.
func BenchmarkFig7SedoMovement(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := s.Movement(47846, world.SedoStmtDay.Add(-1)); m.Original == 0 {
			b.Fatal("empty movement")
		}
	}
}

// BenchmarkCloudflareGoogleMovement regenerates the remaining §3.4 case
// studies.
func BenchmarkCloudflareGoogleMovement(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := s.Movement(13335, world.CloudflareStmtDay); m.Original == 0 {
			b.Fatal("empty movement")
		}
		s.Movement(15169, world.GoogleStmtDay)
	}
}

// BenchmarkTable1Issuance regenerates Table 1 from the CT log.
func BenchmarkTable1Issuance(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if periods := s.Table1(); len(periods) != 3 {
			b.Fatal("missing periods")
		}
	}
}

// BenchmarkFig8CATimelines regenerates Figure 8 from the CT log.
func BenchmarkFig8CATimelines(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tls := s.Fig8(); len(tls) == 0 {
			b.Fatal("no timelines")
		}
	}
}

// BenchmarkTable2Revocations regenerates Table 2 from CT + CRL state.
func BenchmarkTable2Revocations(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := s.Table2(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkRussianCAImpact regenerates the §4.3 analysis from scan data.
func BenchmarkRussianCAImpact(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.RussianCA(); rep.UniqueCerts == 0 {
			b.Fatal("no certs")
		}
	}
}

// BenchmarkHostingComposition regenerates the §3.1 hosting breakdown.
func BenchmarkHostingComposition(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Hosting(); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkIssuanceRate regenerates the §4 per-day issuance volumes.
func BenchmarkIssuanceRate(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range s.Table1() {
			if p.PerDay() < 0 {
				b.Fatal("negative rate")
			}
		}
	}
}

// BenchmarkRenderAll renders the complete report (all charts + tables).
func BenchmarkRenderAll(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RenderAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep measures one full-zone measurement sweep (iterative
// resolution of every registered domain over the in-memory wire).
func BenchmarkSweep(b *testing.B) {
	s := study(b)
	pipe := &openintel.Pipeline{
		Resolver: s.World.NewResolver(),
		Seeds:    s.World.Registries,
		Clock:    s.World.Clock(),
		Store:    store.New(),
		Workers:  8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Sweep(context.Background(), simtime.ConflictStart); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepLossy is BenchmarkSweep over a degraded wire: 10%
// injected packet loss with two retries, quantifying what deterministic
// fault injection plus recovery costs relative to the clean sweep.
func BenchmarkSweepLossy(b *testing.B) {
	s := study(b)
	resolver, _ := s.World.NewFaultyResolver(s.Opts.World.Seed, dns.FaultProfile{Loss: 0.10})
	pipe := &openintel.Pipeline{
		Resolver: resolver,
		Seeds:    s.World.Registries,
		Clock:    s.World.Clock(),
		Store:    store.New(),
		Workers:  8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := pipe.Sweep(context.Background(), simtime.ConflictStart)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Failed > stats.Domains/100 {
			b.Fatalf("lossy sweep failed %d/%d domains", stats.Failed, stats.Domains)
		}
	}
}

// BenchmarkWorldBuild measures constructing the whole ecosystem
// (providers, domains, events, certificates, CT log).
func BenchmarkWorldBuild(b *testing.B) {
	cfg := world.TestConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := world.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationResolveInMemory and BenchmarkAblationResolveUDP compare
// the two transports on the same resolution (the in-memory wire is what
// makes full-zone daily sweeps affordable).
func BenchmarkAblationResolveInMemory(b *testing.B) {
	s := study(b)
	s.World.Clock().Set(simtime.ConflictStart)
	r := s.World.NewResolver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FlushCache()
		if _, err := r.LookupA(ctx, "sanctioned001.ru."); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationResolveUDP(b *testing.B) {
	s := study(b)
	s.World.Clock().Set(simtime.ConflictStart)
	inner := s.World.NewResolver()
	srv := &dns.Server{Handler: dns.HandlerFunc(func(q *dns.Message, _ netip.Addr) *dns.Message {
		out := q.Reply()
		res, err := inner.Resolve(context.Background(), q.Questions[0].Name, q.Questions[0].Type)
		if err != nil {
			out.RCode = dns.RCodeServFail
			return out
		}
		out.RCode = res.RCode
		out.Answers = res.Answers
		return out
	})}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := dns.NewClient(&dns.UDPTransport{Port: int(srv.Addr().Port())})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.FlushCache()
		if _, err := client.Query(ctx, srv.Addr().Addr(), "sanctioned001.ru.", dns.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationResolverCache quantifies the delegation/host caches:
// with the cache warm, repeated resolutions skip the root and TLD hops.
func BenchmarkAblationResolverCacheWarm(b *testing.B) {
	s := study(b)
	s.World.Clock().Set(simtime.ConflictStart)
	r := s.World.NewResolver()
	ctx := context.Background()
	if _, err := r.LookupA(ctx, "sanctioned001.ru."); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.LookupA(ctx, "sanctioned001.ru."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStoreEpochVsNaive contrasts epoch-compressed storage
// against one-record-per-sweep storage for a stable domain measured over
// 200 sweeps.
func BenchmarkAblationStoreEpoch(b *testing.B) {
	cfg := store.Config{
		NSHosts:   []string{"ns1.reg.ru.", "ns2.reg.ru."},
		NSAddrs:   []netip.Addr{netip.MustParseAddr("11.0.0.1")},
		ApexAddrs: []netip.Addr{netip.MustParseAddr("11.0.1.1")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := store.New()
		for d := simtime.Day(0); d < 200; d++ {
			st.Add(store.Measurement{Domain: "x.ru.", Day: d, Config: cfg})
		}
		if stats := st.Stats(); stats.Epochs != 1 {
			b.Fatalf("epochs = %d", stats.Epochs)
		}
	}
}

func BenchmarkAblationStoreNaive(b *testing.B) {
	cfg := store.Config{
		NSHosts:   []string{"ns1.reg.ru.", "ns2.reg.ru."},
		NSAddrs:   []netip.Addr{netip.MustParseAddr("11.0.0.1")},
		ApexAddrs: []netip.Addr{netip.MustParseAddr("11.0.1.1")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The naive baseline: one distinct record per sweep (forced by
		// making each day's config unique, defeating compression).
		st := store.New()
		for d := simtime.Day(0); d < 200; d++ {
			c := cfg
			c.NSHosts = []string{fmt.Sprintf("ns%d.reg.ru.", d)}
			st.Add(store.Measurement{Domain: "x.ru.", Day: d, Config: c})
		}
		if stats := st.Stats(); stats.Epochs != 200 {
			b.Fatalf("epochs = %d", stats.Epochs)
		}
	}
}

// BenchmarkAblationSeriesEpoch and BenchmarkAblationSeriesNaive contrast
// the epoch-sharded analysis engine against the per-day reference path on
// the same Figure 1 computation over every collected sweep: the naive
// path re-walks and re-classifies the whole store once per day, while the
// epoch engine classifies once per (domain, epoch, geo-version window)
// and spreads domains over the worker pool.
func BenchmarkAblationSeriesEpoch(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Analyzer.NSCompositionSeries(s.Sweeps, nil); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkAblationSeriesNaive(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Analyzer.ReferenceNSCompositionSeries(s.Sweeps, nil); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkAblationCTProofs compares memoized vs recomputed Merkle roots
// on the study's real CT log.
func BenchmarkAblationCTRootMemoized(b *testing.B) {
	s := study(b)
	n := s.World.CTLog.Size()
	if _, err := s.World.CTLog.RootAt(n); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.World.CTLog.RootAt(n); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchFixture keeps `go test ./` meaningful: the shared fixture
// builds and the headline numbers are sane.
func TestBenchFixture(t *testing.T) {
	s, err := core.New(core.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	fig1 := s.Fig1()
	if len(fig1) == 0 {
		t.Fatal("no Figure 1 series")
	}
	last := fig1[len(fig1)-1]
	if last.FullPct() < 65 || last.FullPct() > 82 {
		t.Errorf("final fully-Russian NS share = %.1f, want ≈ 73.9", last.FullPct())
	}
	if err := s.RenderAll(io.Discard); err != nil {
		t.Fatal(err)
	}
	var md testWriter
	if err := s.ExperimentsMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if md.n == 0 {
		t.Fatal("empty experiments markdown")
	}
	rows := s.Table2()
	for _, r := range rows {
		if r.Org == pki.DigiCert && r.SancRevokedPct() != 100 {
			t.Errorf("DigiCert sanctioned revocation = %.1f%%, want 100%%", r.SancRevokedPct())
		}
	}
}

type testWriter struct{ n int }

func (w *testWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
