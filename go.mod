module whereru

go 1.22
